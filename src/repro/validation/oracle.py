"""Ground-truth oracle: exact measurements from the netsim event stream.

The oracle subscribes to :class:`repro.netsim.observer.EventStream` events
taken at *the same observation points as the optical TAPs* (core-switch
ingress, bottleneck-port egress) plus the loss points the TAPs cannot see
(every queue, every link).  It keeps exact per-flow state in unbounded
Python structures — no hashing, no fixed-size stashes, no sketches — so
every number it produces is true by construction:

- **bytes/packets**: per 5-tuple, every ingress-TAP-point arrival with its
  IPv4 total length (the unit ``flow_bytes`` accumulates) and timestamp,
  so windowed counts (e.g. "since the flow claimed its register slot")
  are exact;
- **RTT**: the eACK pairing of Algorithm 1 executed with an exact
  dictionary — a data packet stashes ``(ack-direction key, eACK) -> ts``
  (retransmissions overwrite, as the latest copy is what the ACK answers)
  and the matching pure ACK yields ``now - ts``;
- **queue residency**: packets are tracked by identity (``Packet.uid``)
  from switch ingress to tapped-port egress — the true time spent inside
  the tapped switch, serialisation included, which is precisely the
  quantity §4.2 derives from TAP timestamp deltas;
- **drops**: every tail drop and every in-link loss, attributed to the
  dropped packet's flow and split into payload-carrying ("data") and pure
  control segments, because sequence-regression loss counting only ever
  answers for lost *data*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netsim.observer import EventStream, NetEvent, NetEventKind
from repro.netsim.packet import F_ACK, F_SYN, PROTO_TCP, FiveTuple, Packet


@dataclass
class FlowTruth:
    """Exact per-flow (per direction) ground truth."""

    five_tuple: FiveTuple
    packets: int = 0
    bytes_total_len: int = 0          # sum of IPv4 total lengths (flow_bytes unit)
    payload_bytes: int = 0
    first_ts_ns: int = -1
    last_ts_ns: int = -1
    arrivals: List[Tuple[int, int]] = field(default_factory=list)  # (ts, ip_total_len)
    rtt_samples: List[Tuple[int, int]] = field(default_factory=list)  # (ts, rtt_ns)
    # What the P4 algorithm *should* measure: eACK matching replayed with
    # the data plane's exact discipline (no re-stash on a sequence
    # regression, staleness cutoff) but unbounded exact state.  Differs
    # from ``rtt_samples`` when a retransmitted segment's ACK matches the
    # original copy's timestamp — a recovery-time sample the algorithm
    # reports as RTT whenever it sits under the staleness cutoff.
    expected_rtt_samples: List[Tuple[int, int]] = field(default_factory=list)
    qdelay_samples: List[Tuple[int, int]] = field(default_factory=list)  # (ts, delay_ns)
    drops_data: int = 0
    drops_control: int = 0
    # Exact replication of the data plane's sequence-regression rule
    # (RFC 1982 serial compare against the previous data packet's seq),
    # run over the same ingress arrivals with unbounded state: what the
    # ``pkt_loss`` register *should* contain absent collisions.
    prev_seq: int = 0
    regressions: int = 0

    @property
    def is_tcp(self) -> bool:
        return self.five_tuple.proto == PROTO_TCP

    @property
    def drops(self) -> int:
        return self.drops_data + self.drops_control

    def packets_since(self, ts_ns: int) -> Tuple[int, int]:
        """(packets, total-length bytes) of arrivals with ``ts >= ts_ns``."""
        pkts = 0
        nbytes = 0
        for ts, length in self.arrivals:
            if ts >= ts_ns:
                pkts += 1
                nbytes += length
        return pkts, nbytes

    def payload_bytes_until(self, ts_ns: int) -> int:
        """Payload bytes of data arrivals strictly before ``ts_ns``
        (the window the count-min sketch saw before a slot claim)."""
        # arrivals stores total length; payload windows need their own sum.
        total = 0
        for ts, payload in self._payload_arrivals:
            if ts < ts_ns:
                total += payload
        return total

    @property
    def rtt_values_ns(self) -> List[int]:
        return [r for _, r in self.rtt_samples]

    @property
    def expected_rtt_values_ns(self) -> List[int]:
        return [r for _, r in self.expected_rtt_samples]

    @property
    def max_qdelay_ns(self) -> int:
        return max((d for _, d in self.qdelay_samples), default=0)

    def max_qdelay_in_window(self, start_ns: int, end_ns: int) -> int:
        return max((d for ts, d in self.qdelay_samples if start_ns <= ts <= end_ns),
                   default=0)

    # populated by the oracle; kept out of the dataclass repr noise
    _payload_arrivals: List[Tuple[int, int]] = field(default_factory=list, repr=False)


class GroundTruthOracle:
    """Subscribes to an :class:`EventStream` and accumulates
    :class:`FlowTruth` per 5-tuple."""

    def __init__(self, stream: Optional[EventStream] = None,
                 rtt_max_age_ns: int = 1_000_000_000) -> None:
        self.flows: Dict[FiveTuple, FlowTruth] = {}
        self.rtt_max_age_ns = rtt_max_age_ns
        # Exact eACK stash: (ACK-direction key, expected ack) -> ingress ts.
        self._eack: Dict[Tuple[FiveTuple, int], int] = {}
        # Same stash under the data plane's discipline: armed only by
        # non-regressing data packets (the P4 code never re-stashes a
        # retransmission), so a later ACK answers the *original* copy.
        self._eack_p4: Dict[Tuple[FiveTuple, int], int] = {}
        # Packet identity -> core-switch ingress ts (queue residency).
        self._inflight: Dict[int, int] = {}
        self.events_seen = 0
        self.rtt_matches = 0
        self.qdelay_matches = 0
        if stream is not None:
            stream.subscribe(self.on_event)

    # -- event dispatch -----------------------------------------------------

    def on_event(self, ev: NetEvent) -> None:
        self.events_seen += 1
        kind = ev.kind
        if kind is NetEventKind.SWITCH_INGRESS:
            self._on_ingress(ev.pkt, ev.time_ns)
        elif kind is NetEventKind.PORT_EGRESS:
            self._on_egress(ev.pkt, ev.time_ns)
        elif kind in (NetEventKind.QUEUE_DROP, NetEventKind.IMPAIRMENT_DROP):
            self._on_drop(ev.pkt)

    def _truth(self, ft: FiveTuple) -> FlowTruth:
        truth = self.flows.get(ft)
        if truth is None:
            truth = FlowTruth(ft)
            self.flows[ft] = truth
        return truth

    # -- observation points --------------------------------------------------

    def _on_ingress(self, pkt: Packet, ts_ns: int) -> None:
        ft = pkt.five_tuple
        truth = self._truth(ft)
        truth.packets += 1
        truth.bytes_total_len += pkt.ip_total_len
        truth.payload_bytes += pkt.payload_len
        if truth.first_ts_ns < 0:
            truth.first_ts_ns = ts_ns
        truth.last_ts_ns = ts_ns
        truth.arrivals.append((ts_ns, pkt.ip_total_len))
        if pkt.payload_len > 0:
            truth._payload_arrivals.append((ts_ns, pkt.payload_len))

        self._inflight[pkt.uid] = ts_ns

        if pkt.proto != PROTO_TCP:
            return
        if pkt.payload_len > 0:
            key = (ft.reversed(), pkt.expected_ack)
            if (truth.prev_seq != 0
                    and ((pkt.seq - truth.prev_seq) & 0xFFFFFFFF) >= 0x80000000):
                truth.regressions += 1
            else:
                truth.prev_seq = pkt.seq
                self._eack_p4[key] = ts_ns
            # Path-truth stash: overwriting on retransmission (the eventual
            # ACK answers the latest copy actually delivered).
            self._eack[key] = ts_ns
        elif pkt.flags & F_ACK and not pkt.flags & F_SYN:
            stashed = self._eack.pop((ft, pkt.ack), None)
            if stashed is not None:
                rtt = ts_ns - stashed
                self.rtt_matches += 1
                # The RTT belongs to the *data* direction's flow — the one
                # whose register the control plane reads via rev_flow_id.
                self._truth(ft.reversed()).rtt_samples.append((ts_ns, rtt))
            expected = self._eack_p4.pop((ft, pkt.ack), None)
            if expected is not None:
                rtt = ts_ns - expected
                if rtt <= self.rtt_max_age_ns:
                    self._truth(ft.reversed()).expected_rtt_samples.append(
                        (ts_ns, rtt))

    def _on_egress(self, pkt: Packet, ts_ns: int) -> None:
        ts_in = self._inflight.pop(pkt.uid, None)
        if ts_in is None:
            return
        self.qdelay_matches += 1
        self._truth(pkt.five_tuple).qdelay_samples.append((ts_ns, ts_ns - ts_in))

    def _on_drop(self, pkt: Packet) -> None:
        truth = self._truth(pkt.five_tuple)
        if pkt.payload_len > 0:
            truth.drops_data += 1
        else:
            truth.drops_control += 1

    # -- aggregate truth ------------------------------------------------------

    def truth_for(self, ft: FiveTuple) -> Optional[FlowTruth]:
        return self.flows.get(ft)

    @property
    def total_payload_bytes(self) -> int:
        """Payload bytes over all flows at the ingress point."""
        return sum(t.payload_bytes for t in self.flows.values())

    @property
    def total_tcp_payload_bytes(self) -> int:
        """TCP payload at the ingress point — the upper bound on total
        mass inserted into the long-flow sketch (the P4 parser rejects
        non-TCP packets, so UDP never reaches the pipeline)."""
        return sum(t.payload_bytes for t in self.flows.values() if t.is_tcp)

    @property
    def global_max_qdelay_ns(self) -> int:
        return max((t.max_qdelay_ns for t in self.flows.values()), default=0)

    def max_qdelay_in_window(self, start_ns: int, end_ns: int) -> int:
        return max((t.max_qdelay_in_window(start_ns, end_ns)
                    for t in self.flows.values()), default=0)
