"""Differential checker: P4 registers/reports vs oracle ground truth.

Every check compares a value the P4 side produced (a register read via
the runtime API, a control-plane sample series, or a digest-derived
report) against the exact number the :class:`GroundTruthOracle`
accumulated from the event stream, under the tolerance declared for that
metric in :mod:`repro.validation.tolerances`.

What is checked, and why the comparison is sound:

- **counters** (exact): a claimed slot's ``flow_bytes``/``flow_pkts``
  accumulate IPv4 total lengths of ingress-TAP arrivals from the claim
  packet onward; the oracle counts the same arrivals at the same
  observation point, windowed to ``ts >= first_seen_ns``.
- **loss**: the ``pkt_loss`` register counts sequence regressions (a
  retransmission proxy) for the whole run; truth is dropped *data*
  packets.  SACK-based recovery retransmits roughly once per hole, so
  the two agree within the declared envelope; deliberate reordering
  widens it.
- **RTT**: every control-plane sample must sit inside the oracle's
  per-packet [min, max] envelope (widened), medians must agree, and the
  ``rtt_count`` register can never exceed the oracle's match count by
  more than the declared slack — the 32-bit signature compare means the
  stash can lose matches but not invent them.
- **queue delay**: the per-flow peak occupancy ever reported must be
  backed by true residency *somewhere* (a colliding flow can legitimately
  inflate a shared register cell, so the upper bound uses the global
  max); conversely a flow whose true peak was substantial must have been
  seen at all (coverage floor).
- **sketch**: flows whose slot was never owned must never be
  under-counted by the CMS; overestimates and long-flow claims are
  bounded by the documented ``eps*N`` false-positive envelope.
- **tracking**: a TCP flow that moved several multiples of the long-flow
  threshold must have been claimed (unless its slot was stolen) — the
  "monitor silently dead" regression guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.config import MetricKind
from repro.core.control_plane import MonitorControlPlane, TrackedFlow
from repro.validation.oracle import FlowTruth, GroundTruthOracle
from repro.validation.tolerances import (
    COUNTERS,
    LONG_FLOW_CLAIM,
    LOSS_PKTS,
    LOSS_PKTS_REORDER,
    LOSS_REGRESSIONS,
    MICROBURST_MS,
    QUEUE_DELAY_MS,
    RTT_COVERAGE,
    RTT_DISTRIBUTION_MS,
    RTT_MS,
    SKETCH,
    Tolerance,
)

NS_PER_MS = 1_000_000


@dataclass
class CheckResult:
    """One comparison: a P4-side value against its oracle truth."""

    metric: str
    subject: str                # flow label or "global"
    p4_value: float
    truth_value: float
    tolerance: str
    passed: bool
    note: str = ""

    def __str__(self) -> str:
        mark = "ok " if self.passed else "FAIL"
        line = (f"[{mark}] {self.metric:<22} {self.subject:<28} "
                f"p4={self.p4_value:g} truth={self.truth_value:g} "
                f"({self.tolerance})")
        return line + (f" — {self.note}" if self.note else "")

    def to_jsonable(self) -> dict:
        return {
            "metric": self.metric,
            "subject": self.subject,
            "p4_value": self.p4_value,
            "truth_value": self.truth_value,
            "tolerance": self.tolerance,
            "passed": self.passed,
            "note": self.note,
        }


@dataclass
class ValidationReport:
    """All check results of one scenario run."""

    results: List[CheckResult] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> List[CheckResult]:
        return [r for r in self.results if not r.passed]

    def add(self, result: CheckResult) -> None:
        self.results.append(result)

    def skip(self, reason: str) -> None:
        self.skipped.append(reason)

    def summary(self) -> str:
        lines = [str(r) for r in self.results]
        lines.append(
            f"{len(self.results)} checks, {len(self.failures)} failed, "
            f"{len(self.skipped)} skipped"
        )
        return "\n".join(lines)

    def to_jsonable(self) -> dict:
        return {
            "passed": self.passed,
            "checks": [r.to_jsonable() for r in self.results],
            "skipped": list(self.skipped),
        }


class DifferentialChecker:
    """Compares a finished run's P4 state against its oracle."""

    def __init__(
        self,
        control_plane: MonitorControlPlane,
        oracle: GroundTruthOracle,
        reordering: bool = False,
    ) -> None:
        self.cp = control_plane
        self.oracle = oracle
        self.runtime = control_plane.runtime
        self.config = control_plane.config
        self.mask = self.config.flow_slots - 1
        # Scenarios that deliberately reorder (reorder impairment, jitter
        # >= 1 ms) get the widened loss envelope.
        self.loss_tol = LOSS_PKTS_REORDER if reordering else LOSS_PKTS

    # -- entry point ---------------------------------------------------------

    def check(self) -> ValidationReport:
        report = ValidationReport()
        for flow in self.cp.flows.values():
            truth = self._truth_for(flow)
            if truth is None:
                report.add(CheckResult(
                    metric="tracking", subject=self._label(flow),
                    p4_value=1.0, truth_value=0.0, tolerance="exact",
                    passed=False,
                    note="tracked flow never seen by the oracle",
                ))
                continue
            self._check_counters(flow, truth, report)
            self._check_loss(flow, truth, report)
            self._check_rtt(flow, truth, report)
            self._check_rtt_distribution(flow, truth, report)
            self._check_queue(flow, truth, report)
            self._check_claim(flow, truth, report)
        self._check_tracking_coverage(report)
        self._check_sketch(report)
        self._check_microbursts(report)
        return report

    # -- per-flow truth lookup ------------------------------------------------

    def _truth_for(self, flow: TrackedFlow) -> Optional[FlowTruth]:
        """TrackedFlow carries no protocol; match on addressing."""
        for ft, truth in self.oracle.flows.items():
            if (ft.src_ip == flow.src_ip and ft.dst_ip == flow.dst_ip
                    and ft.src_port == flow.src_port
                    and ft.dst_port == flow.dst_port):
                return truth
        return None

    @staticmethod
    def _label(flow: TrackedFlow) -> str:
        return (f"{flow.src_ip & 0xFF}.{flow.src_port}->"
                f"{flow.dst_ip & 0xFF}.{flow.dst_port}")

    def _shares_index(self, flow: TrackedFlow, attr: str) -> bool:
        """True when another tracked flow aliases the same register cell
        (fid & mask collision) — the check must then be skipped, not
        failed, because the cell holds a sum over both flows."""
        idx = getattr(flow, attr) & self.mask
        for other in self.cp.flows.values():
            if other is flow:
                continue
            if getattr(other, attr) & self.mask == idx:
                return True
        return False

    # -- individual checks ----------------------------------------------------

    def _check_counters(self, flow: TrackedFlow, truth: FlowTruth,
                        report: ValidationReport) -> None:
        if flow.evicted:
            report.skip(f"counters {self._label(flow)}: slot released by eviction")
            return
        pkts, nbytes = truth.packets_since(flow.first_seen_ns)
        p4_bytes = self.runtime.read_register("flow_bytes", flow.slot)
        p4_pkts = self.runtime.read_register("flow_pkts", flow.slot)
        report.add(CheckResult(
            metric="flow_bytes", subject=self._label(flow),
            p4_value=float(p4_bytes), truth_value=float(nbytes),
            tolerance=COUNTERS.describe(),
            passed=COUNTERS.allows(p4_bytes, nbytes),
        ))
        report.add(CheckResult(
            metric="flow_pkts", subject=self._label(flow),
            p4_value=float(p4_pkts), truth_value=float(pkts),
            tolerance=COUNTERS.describe(),
            passed=COUNTERS.allows(p4_pkts, pkts),
        ))

    def _check_loss(self, flow: TrackedFlow, truth: FlowTruth,
                    report: ValidationReport) -> None:
        if not truth.is_tcp:
            return  # sequence regression is a TCP retransmission proxy
        if self._shares_index(flow, "flow_id"):
            report.skip(f"loss {self._label(flow)}: pkt_loss cell shared")
            return
        p4_loss = self.runtime.read_register("pkt_loss", flow.flow_id & self.mask)
        # (1) Implementation check, exact: the register must equal the
        # oracle's replay of the same regression rule on the same arrivals.
        report.add(CheckResult(
            metric="loss_regressions", subject=self._label(flow),
            p4_value=float(p4_loss), truth_value=float(truth.regressions),
            tolerance=LOSS_REGRESSIONS.describe(),
            passed=LOSS_REGRESSIONS.allows(p4_loss, truth.regressions),
            note=LOSS_REGRESSIONS.note,
        ))
        # (2) Semantic proxy check against true drops: bounded above by
        # the declared envelope, plus a coverage floor when drops were
        # plentiful (a dead counter must not pass).
        true_drops = truth.drops_data
        upper_ok = p4_loss <= self.loss_tol.upper(true_drops)
        floor = 0.25 * true_drops - 3.0
        floor_ok = true_drops < 10 or p4_loss >= floor
        report.add(CheckResult(
            metric="loss_proxy", subject=self._label(flow),
            p4_value=float(p4_loss), truth_value=float(true_drops),
            tolerance=f"<= {self.loss_tol.upper(true_drops):.0f}, "
                      f">= {max(0.0, floor):.0f}",
            passed=upper_ok and floor_ok,
            note=self.loss_tol.metric,
        ))

    def _check_rtt(self, flow: TrackedFlow, truth: FlowTruth,
                   report: ValidationReport) -> None:
        truth_ms = [r / NS_PER_MS for r in truth.expected_rtt_values_ns]
        cp_ms = self.cp.metric_values(MetricKind.RTT, flow.flow_id)
        if self._shares_index(flow, "rev_flow_id"):
            report.skip(f"rtt {self._label(flow)}: rtt cell shared")
            return
        if len(truth_ms) < 5 or len(cp_ms) < 2:
            report.skip(f"rtt {self._label(flow)}: too few samples "
                        f"(truth={len(truth_ms)}, cp={len(cp_ms)})")
        else:
            lo = RTT_MS.lower(min(truth_ms))
            hi = RTT_MS.upper(max(truth_ms))
            outside = [v for v in cp_ms if not lo <= v <= hi]
            report.add(CheckResult(
                metric="rtt_envelope", subject=self._label(flow),
                p4_value=float(outside[0]) if outside else float(cp_ms[0]),
                truth_value=float(min(truth_ms)),
                tolerance=f"[{lo:.2f}, {hi:.2f}] ms",
                passed=not outside,
                note=f"{len(outside)}/{len(cp_ms)} samples outside envelope"
                     if outside else f"{len(cp_ms)} samples in envelope",
            ))
            self._check_rtt_locality(flow, truth, report)
        # Coverage: the stash can only lose matches, never invent them.
        self._check_rtt_coverage(flow, truth, report)

    #: A control-plane RTT sample reads the *latest* register match, so it
    #: must (nearly) equal some true per-packet RTT shortly before the
    #: tick; the window absorbs register staleness from missed matches.
    RTT_LOCALITY_WINDOW_NS = 3_000_000_000

    def _check_rtt_locality(self, flow: TrackedFlow, truth: FlowTruth,
                            report: ValidationReport) -> None:
        series = self.cp.series(MetricKind.RTT, flow.flow_id)
        unmatched: List[Tuple[float, float]] = []
        checked = 0
        for t_s, value_ms in series:
            tick_ns = int(t_s * 1e9)
            window = [r / NS_PER_MS for ts, r in truth.expected_rtt_samples
                      if tick_ns - self.RTT_LOCALITY_WINDOW_NS < ts <= tick_ns]
            if not window:
                continue  # register legitimately stale; nothing to match
            checked += 1
            if not any(RTT_MS.allows(value_ms, w) for w in window):
                unmatched.append((t_s, value_ms))
        if not checked:
            report.skip(f"rtt locality {self._label(flow)}: no tick had "
                        f"truth samples in window")
            return
        first_bad = unmatched[0] if unmatched else (0.0, 0.0)
        report.add(CheckResult(
            metric="rtt_locality", subject=self._label(flow),
            p4_value=first_bad[1] if unmatched else float(checked),
            truth_value=float(len(unmatched)),
            tolerance=f"each sample within {RTT_MS.describe()} of a truth "
                      f"sample <= {self.RTT_LOCALITY_WINDOW_NS / 1e9:.0f}s back",
            passed=not unmatched,
            note=(f"{len(unmatched)}/{checked} ticks unmatched, first at "
                  f"t={first_bad[0]:.2f}s" if unmatched
                  else f"{checked} ticks matched"),
        ))

    #: Percentiles over fewer samples than this are too noisy to compare.
    RTT_DISTRIBUTION_MIN_SAMPLES = 16

    def _check_rtt_distribution(self, flow: TrackedFlow, truth: FlowTruth,
                                report: ValidationReport) -> None:
        """Histogram-derived p50/p99 vs numpy percentiles of the oracle's
        per-packet RTT samples — the distribution-level counterpart of
        the envelope/median checks, active only when the run was built
        with data-plane histograms."""
        ext = getattr(self.cp, "histograms", None)
        if ext is None:
            return
        if self._shares_index(flow, "rev_flow_id"):
            report.skip(f"rtt distribution {self._label(flow)}: "
                        f"histogram row shared")
            return
        import numpy as np
        from repro.p4.histogram import bin_quantile
        hist = self.cp.monitor.rtt_loss.rtt_hist
        idx = flow.rev_flow_id & self.mask
        # Extracted windows plus whatever still sits in the banks: the
        # complete all-time row, regardless of extraction phase.
        counts = ext.rtt_cumulative[idx] + hist.snapshot()[idx]
        total = int(counts.sum())
        truth_ms = [r / NS_PER_MS for r in truth.expected_rtt_values_ns]
        if (total < self.RTT_DISTRIBUTION_MIN_SAMPLES
                or len(truth_ms) < self.RTT_DISTRIBUTION_MIN_SAMPLES):
            report.skip(f"rtt distribution {self._label(flow)}: too few "
                        f"samples (hist={total}, truth={len(truth_ms)})")
            return
        for q, name in ((0.50, "p50"), (0.99, "p99")):
            p4_ms = bin_quantile(hist.edges, counts, q) / NS_PER_MS
            tr_ms = float(np.percentile(truth_ms, q * 100))
            report.add(CheckResult(
                metric=f"rtt_distribution_{name}", subject=self._label(flow),
                p4_value=p4_ms, truth_value=tr_ms,
                tolerance=RTT_DISTRIBUTION_MS.describe(),
                passed=RTT_DISTRIBUTION_MS.allows(p4_ms, tr_ms),
                note=RTT_DISTRIBUTION_MS.note,
            ))

    def _check_rtt_coverage(self, flow: TrackedFlow, truth: FlowTruth,
                            report: ValidationReport) -> None:
        p4_count = self.runtime.read_register("rtt_count",
                                              flow.rev_flow_id & self.mask)
        true_count = len(truth.expected_rtt_samples)
        report.add(CheckResult(
            metric="rtt_sample_count", subject=self._label(flow),
            p4_value=float(p4_count), truth_value=float(true_count),
            tolerance=f"<= {RTT_COVERAGE.upper(true_count):.0f}",
            passed=p4_count <= RTT_COVERAGE.upper(true_count),
        ))

    def _check_queue(self, flow: TrackedFlow, truth: FlowTruth,
                     report: ValidationReport) -> None:
        max_delay_ns = self.config.max_queue_delay_ns()
        occ_series = self.cp.metric_values(MetricKind.QUEUE_OCCUPANCY, flow.flow_id)
        if not occ_series:
            report.skip(f"queue {self._label(flow)}: no occupancy samples")
            return
        p4_peak_ms = max(occ_series) / 100.0 * max_delay_ns / NS_PER_MS
        global_truth_ms = self.oracle.global_max_qdelay_ns / NS_PER_MS
        # Upper bound: a matched TAP pair is exact, and a colliding flow
        # can only contribute residency that truly happened — so no
        # reported peak may exceed the widened global true maximum.
        report.add(CheckResult(
            metric="queue_delay_peak_ms", subject=self._label(flow),
            p4_value=p4_peak_ms, truth_value=global_truth_ms,
            tolerance=f"<= {QUEUE_DELAY_MS.upper(global_truth_ms):.3f} ms",
            passed=p4_peak_ms <= QUEUE_DELAY_MS.upper(global_truth_ms),
        ))
        # Coverage floor: a flow that truly sat in the queue must not be
        # reported as (near) zero.  Only asserted when the truth peak is
        # comfortably above the slack, and at half strength: the peak
        # packet itself can be missed (stash eviction) without the
        # register missing the congestion episode around it.
        flow_truth_ms = truth.max_qdelay_ns / NS_PER_MS
        if flow_truth_ms > 2 * QUEUE_DELAY_MS.abs_slack:
            floor = 0.5 * flow_truth_ms - QUEUE_DELAY_MS.abs_slack
            report.add(CheckResult(
                metric="queue_delay_coverage", subject=self._label(flow),
                p4_value=p4_peak_ms, truth_value=flow_truth_ms,
                tolerance=f">= {floor:.3f} ms",
                passed=p4_peak_ms >= floor,
            ))

    def _check_claim(self, flow: TrackedFlow, truth: FlowTruth,
                     report: ValidationReport) -> None:
        """Long-flow claim false-positive bound: true payload up to and
        including the claim packet must approach the threshold."""
        cms = self.cp.monitor.flow_table.cms
        eps_n = (2.718281828 / cms.width) * self.oracle.total_tcp_payload_bytes
        floor = self.config.long_flow_bytes - 2 * eps_n
        true_at_claim = truth.payload_bytes_until(flow.first_seen_ns + 1)
        report.add(CheckResult(
            metric="long_flow_claim", subject=self._label(flow),
            p4_value=float(self.config.long_flow_bytes),
            truth_value=float(true_at_claim),
            tolerance=f"true bytes >= {floor:.0f}",
            passed=true_at_claim >= floor,
            note=LONG_FLOW_CLAIM.note,
        ))

    def _check_tracking_coverage(self, report: ValidationReport) -> None:
        """A TCP flow that moved >> threshold payload must be tracked —
        unless another flow owns its slot (documented collision policy)."""
        from repro.p4.hashes import crc32_tuple
        threshold = self.config.long_flow_bytes
        for ft, truth in self.oracle.flows.items():
            if not truth.is_tcp or truth.payload_bytes < 4 * threshold:
                continue
            tracked = self.cp.flow_by_tuple(ft.src_ip, ft.dst_ip,
                                            ft.src_port, ft.dst_port)
            if tracked is not None:
                continue
            slot = crc32_tuple(ft) & self.mask
            stolen = any(f.slot == slot for f in self.cp.flows.values())
            report.add(CheckResult(
                metric="tracking", subject=str(ft),
                p4_value=0.0, truth_value=float(truth.payload_bytes),
                tolerance=f">= 4x threshold ({4 * threshold}) must claim",
                passed=stolen,
                note="slot owned by another flow" if stolen
                     else "heavy flow never claimed a slot",
            ))

    def _check_sketch(self, report: ValidationReport) -> None:
        """CMS no-under-count + bounded-over-count for flows whose slot was
        never owned (so every payload packet was inserted)."""
        cms = self.cp.monitor.flow_table.cms
        owned_slots = {f.slot for f in self.cp.flows.values()}
        n_total = self.oracle.total_tcp_payload_bytes
        over_bound = 2 * (2.718281828 / cms.width) * n_total
        from repro.p4.hashes import crc32_tuple
        checked = 0
        for ft, truth in self.oracle.flows.items():
            if truth.payload_bytes == 0 or not truth.is_tcp:
                continue  # the parser rejects non-TCP; UDP never inserts
            slot = crc32_tuple(ft) & self.mask
            if slot in owned_slots:
                continue  # inserts stopped once the slot was claimed
            if self.runtime.program.registers["flow_key"].read(slot) != 0:
                continue
            estimate = cms.query_tuple(ft)
            checked += 1
            report.add(CheckResult(
                metric="sketch_no_undercount", subject=str(ft),
                p4_value=float(estimate), truth_value=float(truth.payload_bytes),
                tolerance=">= truth",
                passed=estimate >= truth.payload_bytes,
                note=SKETCH.note,
            ))
            report.add(CheckResult(
                metric="sketch_overestimate", subject=str(ft),
                p4_value=float(estimate), truth_value=float(truth.payload_bytes),
                tolerance=f"<= truth + {over_bound:.0f}",
                passed=estimate <= truth.payload_bytes + over_bound,
            ))
        if not checked:
            report.skip("sketch: every payload-carrying flow claimed a slot")

    def _check_microbursts(self, report: ValidationReport) -> None:
        """Every reported microburst peak must be backed by true queue
        residency inside (a slightly padded copy of) its window."""
        pad_ns = NS_PER_MS
        for i, event in enumerate(self.cp.microbursts):
            truth_peak = self.oracle.max_qdelay_in_window(
                event.start_ns - pad_ns,
                event.start_ns + event.duration_ns + pad_ns,
            )
            p4_ms = event.peak_queue_delay_ns / NS_PER_MS
            truth_ms = truth_peak / NS_PER_MS
            report.add(CheckResult(
                metric="microburst_peak_ms", subject=f"burst#{i}",
                p4_value=p4_ms, truth_value=truth_ms,
                tolerance=f"<= {MICROBURST_MS.upper(truth_ms):.3f} ms",
                passed=p4_ms <= MICROBURST_MS.upper(truth_ms),
            ))
