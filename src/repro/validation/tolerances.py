"""Declared tolerances: how close the P4 estimate must sit to oracle truth.

Each metric's tolerance is ``|p4 - truth| <= abs_slack + rel_tol * truth``
unless the metric declares exactness.  The table is the contract every
perf refactor is checked against (docs/validation.md reproduces it with
the rationale per row); tests import it so the docs, the checker and the
CLI can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Tolerance:
    """One metric's acceptance envelope."""

    metric: str
    exact: bool = False
    rel_tol: float = 0.0
    abs_slack: float = 0.0
    note: str = ""

    def allows(self, p4_value: float, truth: float) -> bool:
        if self.exact:
            return p4_value == truth
        return abs(p4_value - truth) <= self.abs_slack + self.rel_tol * abs(truth)

    def upper(self, truth: float) -> float:
        return truth + self.abs_slack + self.rel_tol * abs(truth)

    def lower(self, truth: float) -> float:
        return truth - self.abs_slack - self.rel_tol * abs(truth)

    def describe(self) -> str:
        if self.exact:
            return "exact"
        parts = []
        if self.rel_tol:
            parts.append(f"±{self.rel_tol * 100:.0f}%")
        if self.abs_slack:
            parts.append(f"±{self.abs_slack:g} abs")
        return " + ".join(parts) or "exact"


#: Counter metrics are exact: the register accumulates the same IPv4
#: total-length units the oracle counts at the same observation point.
COUNTERS = Tolerance("counters", exact=True,
                     note="flow_bytes/flow_pkts vs arrivals since slot claim")

#: Every control-plane RTT sample must lie inside the oracle's observed
#: [min, max] envelope (widened by the tolerance), and the medians must
#: agree.  The data plane samples the *latest* per-packet RTT at each
#: extraction tick, so medians can differ on sampling phase alone.
RTT_MS = Tolerance("rtt_ms", rel_tol=0.20, abs_slack=2.0,
                   note="CP samples vs oracle per-packet envelope/median")

#: The ``pkt_loss`` register must exactly equal the regression count the
#: oracle computes by running the same serial-number rule over the same
#: ingress arrivals with unbounded state — the register implementation
#: (hashing, indexing, ALU) has no excuse to differ when no other flow
#: aliases its cell.
LOSS_REGRESSIONS = Tolerance("loss_regressions", exact=True,
                             note="pkt_loss register vs oracle regression replay")

#: The *semantic* claim — regressions proxy true drops — is order-of-
#: magnitude: SACK recovery interleaves retransmissions with new data, so
#: one drop can produce ~2 regressions under tail-drop congestion, and
#: timeout recovery more.  The envelope bounds the proxy above at
#: ~3x(truth)+10; a separate coverage floor guards against a dead counter.
LOSS_PKTS = Tolerance("loss_packets", rel_tol=2.0, abs_slack=10.0,
                      note="pkt_loss register vs true dropped data packets")

#: Extra slack when the scenario deliberately reorders packets (reorder
#: impairment or jitter >= 1 ms): every late arrival is a potential
#: spurious regression.
LOSS_PKTS_REORDER = Tolerance("loss_packets_reorder", rel_tol=3.0, abs_slack=15.0,
                              note="loss tolerance under deliberate reordering")

#: Queue-delay peaks come from identity-matched TAP pairs, so a matched
#: P4 peak is exact; slack covers the peak packet being missed (stash
#: eviction) or a colliding flow inflating the per-flow register.
QUEUE_DELAY_MS = Tolerance("queue_delay_ms", rel_tol=0.15, abs_slack=1.0,
                           note="peak-hold occupancy vs oracle max residency")

#: A reported microburst's peak must be backed by true queue residency in
#: its window.
MICROBURST_MS = Tolerance("microburst_peak_ms", rel_tol=0.2, abs_slack=0.5,
                          note="digest peak vs oracle max in event window")

#: Count-min guarantees: never under-count; overestimate bounded by
#: eps*N = (e/width)*total inserted mass with P[violation] <= delta =
#: exp(-depth) per query.  The checker widens the bound by 2x before
#: failing so a fuzz run never trips on the declared tail probability.
SKETCH = Tolerance("sketch_bytes", rel_tol=0.0, abs_slack=0.0,
                   note="never under-count; over <= 2*(e/width)*N")

#: A claimed "long flow" must truly have approached the threshold: its
#: pre-claim payload bytes must be at least threshold - 2*eps*N (the
#: documented false-positive bound of the sketch).
LONG_FLOW_CLAIM = Tolerance("long_flow_claim", rel_tol=0.0, abs_slack=0.0,
                            note="claim implies true bytes >= thr - 2*eps*N")

#: RTT sample counts: the P4 stash can only lose matches to eviction or
#: collision, never invent them (32-bit signature compare), so the match
#: count is bounded above by the oracle's and below by a coverage floor.
RTT_COVERAGE = Tolerance("rtt_sample_count", rel_tol=0.05, abs_slack=8.0,
                         note="per-flow rtt_count <= oracle matches (+slack)")

#: Distribution percentiles (p50/p99) from the data-plane RTT histogram
#: vs numpy percentiles of the oracle's per-packet RTT samples.  The
#: histogram returns the bucket *upper bound*, biased high by up to one
#: log-bin ratio (~19 % at the default 48 bins over 500 us..2 s), so the
#: relative term dominates; the absolute slack covers thin tails.
RTT_DISTRIBUTION_MS = Tolerance("rtt_distribution_ms", rel_tol=0.25,
                                abs_slack=3.0,
                                note="histogram p50/p99 vs oracle percentile")

TOLERANCES = {
    t.metric: t
    for t in (COUNTERS, RTT_MS, LOSS_REGRESSIONS, LOSS_PKTS, LOSS_PKTS_REORDER,
              QUEUE_DELAY_MS, MICROBURST_MS, SKETCH, LONG_FLOW_CLAIM,
              RTT_COVERAGE, RTT_DISTRIBUTION_MS)
}
