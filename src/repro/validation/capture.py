"""TAP mirror-stream recording and its JSON serialisation.

The fuzzer's failure artifacts optionally embed the exact mirror-copy
stream of the failing run so a defect can be replayed through
:class:`repro.core.replay.OfflineAnalyzer` without re-running the
simulation — and so the replay round-trip test can assert that live and
offline analysis reach bit-identical register state
(:meth:`P4Program.state_digest`).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.netsim.packet import Packet, TCPFlags
from repro.netsim.tap import MirrorCopy, TapDirection

#: (timestamp_ns, Packet, TapDirection) — the OfflineAnalyzer record type.
TimedCopy = Tuple[int, Packet, TapDirection]

_PKT_FIELDS = (
    "src_ip", "dst_ip", "proto", "ip_id", "ttl", "src_port", "dst_port",
    "seq", "ack", "window", "payload_len", "tcp_options_len", "ecn",
    "created_ns",
)


class CopyRecorder:
    """A tee sink: records every :class:`MirrorCopy` in delivery order.

    Pass as ``copy_recorder`` to
    :class:`repro.experiments.common.Scenario` (or call directly from any
    mirror sink).  Delivery order is preserved so an offline replay of
    :meth:`timed_copies` — a stable sort by timestamp — processes
    same-timestamp copies in the live order.
    """

    def __init__(self) -> None:
        self.copies: List[MirrorCopy] = []

    def __call__(self, copy: MirrorCopy) -> None:
        self.copies.append(copy)

    def __len__(self) -> int:
        return len(self.copies)

    def timed_copies(self) -> List[TimedCopy]:
        return [(c.timestamp_ns, c.pkt, c.direction) for c in self.copies]

    def to_jsonable(self) -> List[dict]:
        return [copy_to_jsonable(c) for c in self.copies]


def copy_to_jsonable(copy: MirrorCopy) -> dict:
    doc = {f: getattr(copy.pkt, f) for f in _PKT_FIELDS}
    doc["flags"] = int(copy.pkt.flags)
    if copy.pkt.sack:
        doc["sack"] = [list(block) for block in copy.pkt.sack]
    doc["direction"] = copy.direction.value
    doc["ts"] = copy.timestamp_ns
    if copy.egress_port_id:
        doc["egress_port_id"] = copy.egress_port_id
    return doc


def copy_from_jsonable(doc: dict) -> MirrorCopy:
    kwargs = {f: doc[f] for f in _PKT_FIELDS}
    kwargs["flags"] = TCPFlags(doc.get("flags", 0))
    sack = doc.get("sack")
    if sack:
        kwargs["sack"] = [tuple(block) for block in sack]
    pkt = Packet(**kwargs)
    return MirrorCopy(
        pkt,
        TapDirection(doc["direction"]),
        doc["ts"],
        egress_port_id=doc.get("egress_port_id", 0),
    )


def copies_from_jsonable(docs: List[dict]) -> List[TimedCopy]:
    """Deserialise an artifact's capture back into OfflineAnalyzer records."""
    out: List[TimedCopy] = []
    for doc in docs:
        copy = copy_from_jsonable(doc)
        out.append((copy.timestamp_ns, copy.pkt, copy.direction))
    return out
