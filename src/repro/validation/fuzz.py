"""Seeded scenario fuzzer with automatic shrinking.

``run_seed(seed)`` derives a scenario from the seed, runs it through the
live simulator with the ground-truth oracle attached, and differential-
checks the P4 side against truth.  On failure, ``shrink`` greedily
simplifies the spec — dropping flows, impairments, bursts and flaps,
then halving the duration — re-running after each candidate edit and
keeping it only if the failure persists.  The minimal failing spec is
serialised as a replayable JSON artifact (schema ``repro-validate-v1``)
together with the failing check results, so ``repro-experiments
validate --replay artifact.json`` reproduces the exact failure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

from repro.validation.checker import ValidationReport
from repro.validation.scenarios import ScenarioSpec

#: Bounded shrink effort: each accepted edit restarts the pass, so cap
#: total candidate runs rather than passes.
MAX_SHRINK_RUNS = 60

#: Optional hook tests/mutation harnesses use to corrupt the monitor
#: before the run — called with the built ValidationRun.
RunHook = Callable[[object], None]


@dataclass
class FuzzOutcome:
    """Result of fuzzing one seed."""

    seed: int
    passed: bool
    spec: ScenarioSpec
    report: ValidationReport
    shrunk_spec: Optional[ScenarioSpec] = None
    shrunk_report: Optional[ValidationReport] = None
    shrink_runs: int = 0
    artifact_path: Optional[Path] = None
    notes: List[str] = field(default_factory=list)

    @property
    def minimal_spec(self) -> ScenarioSpec:
        return self.shrunk_spec if self.shrunk_spec is not None else self.spec

    @property
    def minimal_report(self) -> ValidationReport:
        return (self.shrunk_report if self.shrunk_report is not None
                else self.report)


def run_spec(spec: ScenarioSpec, run_hook: Optional[RunHook] = None) -> ValidationReport:
    """Build, run and check one scenario spec."""
    if run_hook is not None and spec.batched_path:
        # A run hook instruments per-packet objects (the mutation
        # harness patches register methods) — that demands the scalar
        # twin, the same rule the monitor's construction-time gate
        # applies to trace/profile/fault/telemetry hooks.
        spec = spec.clone(batched_path=False)
    run = spec.build()
    if run_hook is not None:
        run_hook(run)
    run.run()
    return run.check()


def run_seed(seed: int, run_hook: Optional[RunHook] = None) -> ValidationReport:
    """Derive the scenario for ``seed``, run it, and check it."""
    return run_spec(ScenarioSpec.from_seed(seed), run_hook=run_hook)


# -- shrinking -----------------------------------------------------------------


def _candidates(spec: ScenarioSpec) -> List[ScenarioSpec]:
    """Simpler variants of ``spec``, most aggressive first."""
    out: List[ScenarioSpec] = []
    for attr in ("flows", "losses", "jitters", "reorders", "bursts", "flaps"):
        items = getattr(spec, attr)
        for i in range(len(items)):
            if attr == "flows" and len(items) == 1:
                continue  # keep at least one flow: no traffic, no checks
            cand = spec.clone()
            del getattr(cand, attr)[i]
            out.append(cand)
    if spec.duration_s > 4.0:
        cand = spec.clone(duration_s=round(spec.duration_s / 2, 3))
        cand.flows = [f for f in cand.flows if f.start_s < cand.duration_s]
        for f in cand.flows:
            f.duration_s = round(
                min(f.duration_s, cand.duration_s - f.start_s), 3)
        cand.bursts = [b for b in cand.bursts if b.at_s < cand.duration_s]
        cand.flaps = [fl for fl in cand.flaps if fl.start_s < cand.duration_s]
        if cand.flows:
            out.append(cand)
    return out


def shrink(spec: ScenarioSpec, run_hook: Optional[RunHook] = None,
           max_runs: int = MAX_SHRINK_RUNS):
    """Greedy shrink: keep any simplification that still fails.

    Returns ``(minimal_spec, its_report, runs_used)``; the spec is the
    input spec unchanged if no simplification reproduces the failure.
    """
    current = spec
    current_report: Optional[ValidationReport] = None
    runs = 0
    improved = True
    while improved and runs < max_runs:
        improved = False
        for cand in _candidates(current):
            if runs >= max_runs:
                break
            runs += 1
            report = run_spec(cand, run_hook=run_hook)
            if not report.passed:
                current = cand
                current_report = report
                improved = True
                break  # restart candidate generation from the smaller spec
    if current_report is None:
        current_report = run_spec(current, run_hook=run_hook)
        runs += 1
    return current, current_report, runs


# -- artifacts -----------------------------------------------------------------


def write_artifact(path: Path, spec: ScenarioSpec,
                   report: ValidationReport,
                   capture: Optional[List[dict]] = None) -> Path:
    """Serialise a failing (usually shrunk) scenario as a replayable
    JSON artifact."""
    doc = {
        "schema": "repro-validate-v1",
        "kind": "fuzz-failure",
        "seed": spec.seed,
        "spec": spec.to_jsonable(),
        "report": report.to_jsonable(),
    }
    if capture is not None:
        doc["capture"] = capture
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True))
    return path


def load_artifact(path: Path) -> ScenarioSpec:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != "repro-validate-v1":
        raise ValueError(f"{path}: unknown artifact schema {doc.get('schema')!r}")
    return ScenarioSpec.from_jsonable(doc["spec"])


def fuzz_seed(
    seed: int,
    artifact_dir: Optional[Path] = None,
    do_shrink: bool = True,
    run_hook: Optional[RunHook] = None,
) -> FuzzOutcome:
    """The full fuzz cycle for one seed: run, and on failure shrink +
    serialise the minimal failing artifact."""
    spec = ScenarioSpec.from_seed(seed)
    report = run_spec(spec, run_hook=run_hook)
    outcome = FuzzOutcome(seed=seed, passed=report.passed,
                          spec=spec, report=report)
    if report.passed:
        return outcome
    if do_shrink:
        shrunk, shrunk_report, runs = shrink(spec, run_hook=run_hook)
        outcome.shrunk_spec = shrunk
        outcome.shrunk_report = shrunk_report
        outcome.shrink_runs = runs
    if artifact_dir is not None:
        outcome.artifact_path = write_artifact(
            Path(artifact_dir) / f"seed-{seed}.json",
            outcome.minimal_spec, outcome.minimal_report,
        )
    return outcome
