"""Terminal flight-recorder view: top-N series + sparklines + alerts.

:func:`render_watch` turns a :class:`~repro.telemetry.timeseries.TimeSeriesStore`
into one text frame — the ``repro-experiments watch`` CLI mode prints a
frame per refresh interval while the run is in flight, giving the
`watch(1)`-style live view the paper's Grafana dashboards provide for
the measured network, but for the instrument itself.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.telemetry.export import _fmt  # shared human number formatting
from repro.telemetry.timeseries import TimeSeriesStore

__all__ = ["sparkline", "render_watch"]

SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """Unicode block sparkline of the last ``width`` values."""
    vals = list(values)[-width:]
    if not vals:
        return ""
    lo = min(vals)
    hi = max(vals)
    span = hi - lo
    if span <= 0:
        return SPARK_LEVELS[0] * len(vals)
    top = len(SPARK_LEVELS) - 1
    return "".join(
        SPARK_LEVELS[int(round((v - lo) / span * top))] for v in vals)


def _alert_line(alerts) -> str:
    """One-line alert state from a list of ``Alert``-shaped objects."""
    if not alerts:
        return "alerts: none"
    parts = []
    for alert in alerts[:4]:
        flow = f" flow {alert.flow_id}" if alert.flow_id is not None else ""
        parts.append(f"{alert.metric}{flow} "
                     f"({_fmt(alert.value)} > {_fmt(alert.threshold)})")
    more = f" (+{len(alerts) - 4} more)" if len(alerts) > 4 else ""
    return f"alerts: {len(alerts)} active — " + ", ".join(parts) + more


def render_watch(store: TimeSeriesStore, top: int = 12, width: int = 24,
                 now_ns: Optional[int] = None, samples: Optional[int] = None,
                 alerts: Optional[list] = None,
                 sim_stats: Optional[str] = None,
                 hist_line: Optional[str] = None,
                 forensics_line: Optional[str] = None) -> str:
    """One watch frame: header, scheduler line, top-N table with
    sparklines, alert line.

    ``sim_stats`` is a pre-rendered scheduler-introspection line
    (pending events / queue high-water mark / events run) shown right
    under the header — the CLI's watch mode feeds it from the live
    simulator.  ``hist_line`` is the control plane's live p99-RTT
    distribution summary, shown the same way when histograms are on;
    ``forensics_line`` is the latest top-culprit attribution, shown when
    queue forensics is on and an alert has run a culprit query.

    Series are ranked by how fast they are moving right now (|last
    delta|); the sparkline plots per-sample deltas, so a steady counter
    reads flat and a burst reads as a spike — the same reason the
    archive stores deltas alongside raw values.
    """
    header = "flight recorder"
    if now_ns is not None:
        header += f"  t={now_ns / 1e9:.2f}s"
    if samples is not None:
        header += f"  samples={samples}"
    header += (f"  series={len(store)}  points={store.total_points()}"
               f" (cap {store.retention}/series)")
    if sim_stats:
        header += "\n" + sim_stats
    if hist_line:
        header += "\n" + hist_line
    if forensics_line:
        header += "\n" + forensics_line

    rows: List[tuple] = []
    for series in store.top(top):
        last = series.last
        if last is None:
            continue
        label_s = ",".join(f"{k}={v}" for k, v in series.labels)
        rows.append((
            series.name,
            label_s,
            _fmt(last.value),
            _fmt(last.delta),
            _fmt(last.rate),
            sparkline(series.deltas(), width),
        ))
    if not rows:
        return header + "\n(no samples yet)\n" + _alert_line(alerts) + "\n"

    heads = ("metric", "labels", "value", "delta", "rate/s", "delta trend")
    widths = [max(len(heads[i]), max(len(r[i]) for r in rows))
              for i in range(5)]
    lines = [header,
             "  ".join(h.ljust(widths[i]) if i < 5 else h
                       for i, h in enumerate(heads))]
    lines.append("-" * len(lines[1]))
    for row in rows:
        lines.append("  ".join(
            row[i].ljust(widths[i]) if i < 5 else row[i] for i in range(6)))
    lines.append(_alert_line(alerts))
    return "\n".join(lines) + "\n"
