"""Flight recorder: bounded time-series over the metrics registry.

PR 1 gave the stack point-in-time snapshots; this module makes the
instrument *continuous*, mirroring the paper's own model of register
extraction at fixed intervals shipped into an archive.  A
:class:`TelemetrySampler` scheduled in **sim time** snapshots the
registry every ``interval_ns`` and appends one point per scalar series
(histograms contribute ``<name>_count`` / ``<name>_sum``) into a
:class:`TimeSeriesStore` of ring buffers.

Each point carries the raw value plus the **delta** and **rate/s** since
the previous sample; counter resets (value moving backwards) are handled
Prometheus-style — the post-reset value is taken as the increase.

Memory stays O(retention) per series no matter how long the run is:
when a ring buffer reaches its retention cap it is *decimated* —
every other point is dropped and the append stride doubles, so a
million-sample run keeps full-run coverage at progressively coarser
resolution instead of growing without bound.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.telemetry.metrics import MetricsRegistry, TelemetryError

__all__ = [
    "TimeSeriesPoint",
    "TimeSeries",
    "TimeSeriesStore",
    "TelemetrySampler",
    "DEFAULT_INTERVAL_NS",
    "DEFAULT_RETENTION",
]

DEFAULT_INTERVAL_NS = 100_000_000  # 100 ms of sim time
DEFAULT_RETENTION = 600            # points per series (one minute at 100 ms)

NS_PER_S = 1_000_000_000


class TimeSeriesPoint(NamedTuple):
    time_ns: int
    value: float
    delta: float
    rate: float  # delta per second of sim time


class TimeSeries:
    """One metric series as a decimating ring buffer.

    ``append`` is called once per sampler tick; only every ``stride``-th
    tick is retained once decimation has kicked in, but delta/rate are
    always computed against the immediately preceding tick, so a stored
    point is an instantaneous sample of the derivative, not an average
    over the (possibly widened) gap.
    """

    __slots__ = ("name", "labels", "kind", "retention", "stride",
                 "_points", "_skip", "_last_value", "_last_t", "total_appends")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = (),
                 kind: str = "gauge", retention: int = DEFAULT_RETENTION) -> None:
        if retention < 4:
            raise TelemetryError("retention must be at least 4 points")
        self.name = name
        self.labels = labels
        self.kind = kind
        self.retention = retention
        self.stride = 1
        self._points: List[TimeSeriesPoint] = []
        self._skip = 1
        self._last_value: Optional[float] = None
        self._last_t: Optional[int] = None
        self.total_appends = 0

    def append(self, t_ns: int, value: float) -> Optional[TimeSeriesPoint]:
        """Record one sample; returns the point if it was retained."""
        if self._last_t is None:
            delta = 0.0
            rate = 0.0
        else:
            if self.kind == "counter" and value < self._last_value:
                # Counter reset: the increase since the reset is the value.
                delta = value
            else:
                delta = value - self._last_value
            dt = t_ns - self._last_t
            rate = delta * NS_PER_S / dt if dt > 0 else 0.0
        self._last_value = value
        self._last_t = t_ns
        self.total_appends += 1
        self._skip -= 1
        if self._skip > 0:
            return None
        self._skip = self.stride
        point = TimeSeriesPoint(t_ns, float(value), delta, rate)
        self._points.append(point)
        if len(self._points) >= self.retention:
            # Decimate: uniform half-resolution over the whole window,
            # newest point always kept; future appends thin to match.
            self._points = self._points[1::2]
            self.stride *= 2
        return point

    # -- reads ------------------------------------------------------------

    def points(self) -> List[TimeSeriesPoint]:
        return list(self._points)

    def values(self) -> List[float]:
        return [p.value for p in self._points]

    def deltas(self) -> List[float]:
        return [p.delta for p in self._points]

    def rates(self) -> List[float]:
        return [p.rate for p in self._points]

    @property
    def last(self) -> Optional[TimeSeriesPoint]:
        return self._points[-1] if self._points else None

    def __len__(self) -> int:
        return len(self._points)

    def dump(self, since: int = 0) -> dict:
        """Serialisable form; ``since`` keeps only points at or after
        that sim timestamp (incremental scrapes)."""
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "kind": self.kind,
            "stride": self.stride,
            "retention": self.retention,
            "points": [list(p) for p in self._points
                       if p.time_ns >= since],
        }


class TimeSeriesStore:
    """All series of one sampler, keyed on (name, sorted label items)."""

    def __init__(self, retention: int = DEFAULT_RETENTION) -> None:
        if retention < 4:
            raise TelemetryError("retention must be at least 4 points")
        self.retention = retention
        self._series: Dict[Tuple[str, tuple], TimeSeries] = {}

    def _append(self, name: str, labels: tuple, kind: str,
                t_ns: int, value: float) -> Optional[TimeSeriesPoint]:
        key = (name, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = TimeSeries(
                name, labels, kind, retention=self.retention)
        return series.append(t_ns, value)

    def record(self, t_ns: int, snapshot: dict) -> List[dict]:
        """Fold one registry snapshot into the ring buffers.

        Returns the samples *retained this tick* as plain dicts (the
        pusher's wire format): ``{"metric", "labels", "kind", "time_ns",
        "value", "delta", "rate"}``.
        """
        retained: List[dict] = []
        for metric in snapshot.get("metrics", []):
            kind = metric["type"]
            name = metric["name"]
            for series in metric.get("series", []):
                labels = tuple(sorted(series.get("labels", {}).items()))
                if kind == "histogram":
                    parts = (("_count", float(series["count"])),
                             ("_sum", float(series["sum"])))
                    for suffix, value in parts:
                        point = self._append(name + suffix, labels, "counter",
                                             t_ns, value)
                        if point is not None:
                            retained.append(self._as_record(
                                name + suffix, labels, "counter", point))
                else:
                    point = self._append(name, labels, kind, t_ns,
                                         float(series["value"]))
                    if point is not None:
                        retained.append(self._as_record(name, labels, kind, point))
        return retained

    @staticmethod
    def _as_record(name: str, labels: tuple, kind: str,
                   point: TimeSeriesPoint) -> dict:
        return {
            "metric": name,
            "labels": dict(labels),
            "kind": kind,
            "time_ns": point.time_ns,
            "value": point.value,
            "delta": point.delta,
            "rate": point.rate,
        }

    # -- reads ------------------------------------------------------------

    def get(self, name: str, **labels: str) -> Optional[TimeSeries]:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self._series.get(key)

    def series(self) -> Iterable[TimeSeries]:
        return self._series.values()

    def names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for name, _labels in self._series:
            seen.setdefault(name, None)
        return list(seen)

    def top(self, n: int,
            key: Optional[Callable[[TimeSeries], float]] = None) -> List[TimeSeries]:
        """The ``n`` series moving fastest right now (default: |last delta|)."""
        if key is None:
            key = lambda s: abs(s.last.delta) if s.last else 0.0
        return sorted(self._series.values(), key=key, reverse=True)[:n]

    def total_points(self) -> int:
        """Retained points across every series — the memory bound the
        retention cap enforces (≤ retention × series count)."""
        return sum(len(s) for s in self._series.values())

    def __len__(self) -> int:
        return len(self._series)

    def dump(self, since: int = 0) -> dict:
        return {"retention": self.retention,
                "series": [s.dump(since=since) for s in sorted(
                    self._series.values(), key=lambda s: (s.name, s.labels))]}


class TelemetrySampler:
    """Periodic registry → ring-buffer snapshotting, in sim time.

    Ticks are **aligned**: the first sample lands on the next multiple of
    ``interval_ns``, so every retained point sits at t = k·interval —
    exactly the extraction-timestamp model (t_N, t_P, ...) the paper's
    control plane uses.  Observers registered with :meth:`add_observer`
    receive ``(t_ns, retained_records)`` each tick; the push exporter in
    :mod:`repro.telemetry.serve` is one such observer.
    """

    def __init__(self, sim, registry: Optional[MetricsRegistry] = None,
                 interval_ns: int = DEFAULT_INTERVAL_NS,
                 retention: int = DEFAULT_RETENTION,
                 store: Optional[TimeSeriesStore] = None) -> None:
        if interval_ns <= 0:
            raise TelemetryError("sampling interval must be positive")
        self.sim = sim
        self.interval_ns = int(interval_ns)
        # None → resolve the process-global registry at each tick, so a
        # telemetry.reset() between construction and start() stays visible.
        self._registry = registry
        self.store = store or TimeSeriesStore(retention)
        self.samples_taken = 0
        self.running = False
        self._timer = None
        self._observers: List[Callable[[int, List[dict]], None]] = []
        self._samplers: List[Callable[[int], Iterable[tuple]]] = []

    def add_observer(self, fn: Callable[[int, List[dict]], None]) -> None:
        self._observers.append(fn)

    def add_sampler(self, fn: Callable[[int], Iterable[tuple]]) -> None:
        """Register an extra point source polled each tick: ``fn(t_ns)``
        yields ``(name, labels_dict, kind, value)`` tuples folded into
        the store alongside the registry snapshot (e.g. the control
        plane's histogram-percentile mirror)."""
        self._samplers.append(fn)

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._timer = self.sim.every(self.interval_ns, self._tick, align=True)

    def stop(self) -> None:
        self.running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self.running:
            return
        if self._registry is not None:
            registry = self._registry
        else:
            from repro import telemetry
            registry = telemetry.registry()
        now = self.sim.now
        retained = self.store.record(now, registry.snapshot())
        for sampler in self._samplers:
            for name, labels, kind, value in sampler(now):
                labels_t = tuple(sorted((k, str(v)) for k, v in labels.items()))
                point = self.store._append(name, labels_t, kind, now,
                                           float(value))
                if point is not None:
                    retained.append(self.store._as_record(
                        name, labels_t, kind, point))
        self.samples_taken += 1
        for fn in self._observers:
            fn(now, retained)
