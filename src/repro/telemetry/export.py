"""Snapshot exporters.

All three formats render the *same* snapshot dict produced by
:meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`, so a snapshot
serialised to JSON and loaded back renders byte-identical Prometheus
text — the round-trip property the integration tests pin down.

- :func:`to_prometheus_text` — the text exposition format, suitable for
  a node-exporter-style scrape file;
- :func:`to_json` / :func:`from_json` — lossless JSON;
- :func:`render_table` — aligned human-readable summary for the CLI.
"""

from __future__ import annotations

import json
import math
import re
from typing import List

__all__ = ["to_prometheus_text", "to_json", "from_json", "render_table",
           "histogram_quantile"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _prom_labels(labels: dict, extra: str = "") -> str:
    parts = [
        f'{_prom_name(k)}="{"".join(_LABEL_ESCAPES.get(c, c) for c in str(v))}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_num(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(snapshot: dict) -> str:
    """Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    for metric in snapshot.get("metrics", []):
        name = _prom_name(metric["name"])
        if metric.get("help"):
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {metric['type']}")
        for series in metric.get("series", []):
            labels = series.get("labels", {})
            if metric["type"] == "histogram":
                cum = 0
                for bound, count in zip(series["buckets"], series["counts"]):
                    cum += count
                    bound_label = 'le="' + _prom_num(bound) + '"'
                    lines.append(
                        f"{name}_bucket{_prom_labels(labels, bound_label)} {cum}"
                    )
                cum += series["counts"][-1]
                inf_label = 'le="+Inf"'
                lines.append(f"{name}_bucket{_prom_labels(labels, inf_label)} {cum}")
                lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_num(series['sum'])}")
                lines.append(f"{name}_count{_prom_labels(labels)} {series['count']}")
            else:
                lines.append(f"{name}{_prom_labels(labels)} {_prom_num(series['value'])}")
    return "\n".join(lines) + "\n"


def to_json(snapshot: dict, indent: int = 2) -> str:
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def from_json(text: str) -> dict:
    return json.loads(text)


def histogram_quantile(series: dict, q: float) -> float:
    """Bucket-upper-bound estimate of the ``q`` quantile (0..1) from a
    dumped histogram series (``{"buckets", "counts", "count", "max"}``) —
    the snapshot-side twin of :meth:`Histogram.quantile`, so exporters
    and the watch view can derive p50/p90/p99 without the live object."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    counts = series.get("counts") or []
    count = series.get("count", 0)
    if not count:
        # Dumps from foreign sources (merged bin rows, hand-built dicts)
        # may omit the precomputed total; derive it from the bins.
        count = sum(counts)
    if not count:
        return 0.0
    bounds = series.get("buckets") or []
    observed_max = series.get("max")
    if (observed_max is None
            or not math.isfinite(observed_max)):
        # None, NaN or ±inf would leak straight into the return value on
        # the overflow-bucket path; fall back to the last finite bound.
        observed_max = bounds[-1] if bounds else 0.0
    rank = q * count
    seen = 0
    for i, c in enumerate(counts):
        seen += c
        if seen >= rank and c:
            return bounds[i] if i < len(bounds) else observed_max
    return observed_max


def _fmt(value: float) -> str:
    if value is None:
        return "-"
    if abs(value) >= 1e9:
        return f"{value / 1e9:.3g}G"
    if abs(value) >= 1e6:
        return f"{value / 1e6:.3g}M"
    if abs(value) >= 1e4:
        return f"{value / 1e3:.3g}k"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def render_table(snapshot: dict) -> str:
    """Aligned ``name  labels  value`` table; histograms show
    count/mean/p50/p90/p99/max instead of a raw value."""
    rows: List[tuple] = []
    for metric in snapshot.get("metrics", []):
        for series in metric.get("series", []):
            labels = series.get("labels", {})
            label_s = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            if metric["type"] == "histogram":
                count = series["count"]
                mean = series["sum"] / count if count else 0.0
                value = (f"n={_fmt(count)} mean={_fmt(mean)} "
                         f"p50={_fmt(histogram_quantile(series, 0.50))} "
                         f"p90={_fmt(histogram_quantile(series, 0.90))} "
                         f"p99={_fmt(histogram_quantile(series, 0.99))} "
                         f"max={_fmt(series['max'])}" if count else "n=0")
            else:
                value = _fmt(series["value"])
            rows.append((metric["name"], label_s, value, metric["type"]))
    if not rows:
        return "(no metrics recorded)\n"
    w_name = max(len(r[0]) for r in rows)
    w_label = max(len(r[1]) for r in rows)
    out = [f"{'metric':<{w_name}}  {'labels':<{w_label}}  value"]
    out.append("-" * len(out[0]))
    for name, label_s, value, _ in rows:
        out.append(f"{name:<{w_name}}  {label_s:<{w_label}}  {value}")
    return "\n".join(out) + "\n"
