"""Export provenance traces as Chrome-trace/Perfetto JSON and text.

The Chrome trace-event format (loadable by https://ui.perfetto.dev and
``chrome://tracing``) maps naturally onto the provenance model:

- each **layer** becomes a process (``pid``) named via ``"M"`` metadata;
- each **trace id** becomes a thread (``tid``) within those processes;
- every :class:`~repro.telemetry.provenance.TraceEvent` becomes an
  instant (``"i"``) whose ``args`` carry the full event — enough to
  reconstruct the original tuples (:func:`events_from_perfetto`);
- per-(layer, packet) **envelope slices** (``"X"``) stretch from the
  first to the last event so a packet's journey is visible without
  zooming to individual instants;
- telemetry **spans** (satellite bridge) land on their own track, and
  **trigger dumps** appear as global instants at the fire time.

Timestamps: the trace format's ``ts`` is microseconds; simulated
nanoseconds are exported as fractional µs (``t_ns / 1000``) with
``displayTimeUnit: "ns"``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.telemetry.provenance import FrozenWindow, ProvenanceTracer, TraceEvent

__all__ = [
    "LAYER_PIDS",
    "to_perfetto",
    "events_from_perfetto",
    "write_perfetto",
    "render_timeline",
]

#: Stable process ids per layer, so traces from different runs line up.
LAYER_PIDS: Dict[str, int] = {
    "netsim": 1,
    "p4": 2,
    "register": 3,
    "control-plane": 4,
    "archiver": 5,
    "spans": 6,
}
_TRIGGER_PID = 7


def _pid(layer: str) -> int:
    return LAYER_PIDS.get(layer, len(LAYER_PIDS) + 10)


def to_perfetto(
    events: Sequence[TraceEvent],
    spans: Optional[Sequence[dict]] = None,
    dumps: Optional[Sequence[FrozenWindow]] = None,
) -> dict:
    """Build a Chrome-trace JSON document from trace events (+ optional
    span log and trigger dumps)."""
    out: List[dict] = []
    layers_seen = sorted({ev.layer for ev in events} | ({"spans"} if spans else set()))
    for layer in layers_seen:
        out.append({
            "ph": "M", "name": "process_name", "pid": _pid(layer), "tid": 0,
            "args": {"name": f"layer:{layer}"},
        })
    if dumps:
        out.append({
            "ph": "M", "name": "process_name", "pid": _TRIGGER_PID, "tid": 0,
            "args": {"name": "triggers"},
        })

    # Instants carrying the full event for exact round-trip.
    bounds: Dict[Tuple[str, int], List[int]] = {}
    for ev in events:
        out.append({
            "ph": "i", "s": "t",
            "name": f"{ev.kind}:{ev.where}",
            "cat": ev.layer,
            "pid": _pid(ev.layer),
            "tid": ev.trace_id,
            "ts": ev.t_ns / 1000.0,
            "args": {
                "seq": ev.seq,
                "trace_id": ev.trace_id,
                "t_ns": ev.t_ns,
                "layer": ev.layer,
                "kind": ev.kind,
                "where": ev.where,
                "detail": dict(ev.detail),
            },
        })
        lo_hi = bounds.get((ev.layer, ev.trace_id))
        if lo_hi is None:
            bounds[(ev.layer, ev.trace_id)] = [ev.t_ns, ev.t_ns]
        else:
            if ev.t_ns < lo_hi[0]:
                lo_hi[0] = ev.t_ns
            if ev.t_ns > lo_hi[1]:
                lo_hi[1] = ev.t_ns

    # Envelope slices: one per (layer, packet) so journeys read at a glance.
    for (layer, tid), (lo, hi) in sorted(bounds.items()):
        out.append({
            "ph": "X",
            "name": f"pkt {tid} @ {layer}",
            "cat": "envelope",
            "pid": _pid(layer),
            "tid": tid,
            "ts": lo / 1000.0,
            "dur": max(hi - lo, 1) / 1000.0,
            "args": {"trace_id": tid, "layer": layer},
        })

    # Telemetry spans on their own track (satellite bridge).  Entries
    # recorded without a sim clock have no timestamp and are skipped.
    for i, span in enumerate(spans or ()):
        t0 = span.get("t0_ns")
        if t0 is None:
            continue
        out.append({
            "ph": "X",
            "name": span.get("path", "span"),
            "cat": "span",
            "pid": _pid("spans"),
            "tid": 1,
            "ts": t0 / 1000.0,
            "dur": max(int(span.get("dur_ns") or 0), 1) / 1000.0,
            "args": {"wall_ns": span.get("wall_ns"), "index": i},
        })

    # Trigger dumps as global instants.
    for i, dump in enumerate(dumps or ()):
        out.append({
            "ph": "i", "s": "g",
            "name": f"trigger:{dump.reason}",
            "cat": "trigger",
            "pid": _TRIGGER_PID,
            "tid": 1,
            "ts": dump.t_ns / 1000.0,
            "args": {
                "reason": dump.reason,
                "t_ns": dump.t_ns,
                "events_frozen": len(dump.events),
                "detail": dict(dump.detail),
                "index": i,
            },
        })

    return {"traceEvents": out, "displayTimeUnit": "ns"}


def events_from_perfetto(doc: dict) -> List[TraceEvent]:
    """Reconstruct the TraceEvents embedded in a document produced by
    :func:`to_perfetto` (exact round-trip of the event instants)."""
    events: List[TraceEvent] = []
    for entry in doc.get("traceEvents", ()):
        if entry.get("ph") != "i" or entry.get("cat") == "trigger":
            continue
        args = entry.get("args") or {}
        if "seq" not in args:
            continue
        events.append(TraceEvent(
            seq=args["seq"],
            trace_id=args["trace_id"],
            t_ns=args["t_ns"],
            layer=args["layer"],
            kind=args["kind"],
            where=args["where"],
            detail=dict(args.get("detail") or {}),
        ))
    events.sort(key=lambda ev: ev.seq)
    return events


def write_perfetto(path: str, tracer: ProvenanceTracer) -> dict:
    """Serialise a tracer's merged windows + spans + dumps to ``path``."""
    doc = to_perfetto(tracer.events(), spans=tracer.span_log,
                      dumps=tracer.dumps)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"))
        fh.write("\n")
    return doc


def _fmt_ns(t_ns: int) -> str:
    if t_ns >= 1_000_000_000:
        return f"{t_ns / 1e9:.6f}s"
    if t_ns >= 1_000_000:
        return f"{t_ns / 1e6:.3f}ms"
    if t_ns >= 1_000:
        return f"{t_ns / 1e3:.1f}us"
    return f"{t_ns}ns"


def render_timeline(events: Iterable[TraceEvent],
                    trace_id: Optional[int] = None) -> str:
    """Human-readable flow timeline: one line per event, grouped by
    packet, time-ordered within each packet."""
    by_id: Dict[int, List[TraceEvent]] = {}
    for ev in events:
        if trace_id is not None and ev.trace_id != trace_id:
            continue
        by_id.setdefault(ev.trace_id, []).append(ev)
    lines: List[str] = []
    for tid in sorted(by_id):
        evs = sorted(by_id[tid], key=lambda ev: (ev.t_ns, ev.seq))
        layers = sorted({ev.layer for ev in evs})
        lines.append(f"packet trace {tid}  "
                     f"({len(evs)} events, layers: {', '.join(layers)})")
        for ev in evs:
            detail = ""
            if ev.detail:
                detail = "  " + " ".join(
                    f"{k}={v}" for k, v in sorted(ev.detail.items()))
            lines.append(f"  {_fmt_ns(ev.t_ns):>12}  "
                         f"{ev.layer:<13} {ev.kind}:{ev.where}{detail}")
    if not lines:
        lines.append("(no trace events recorded)")
    return "\n".join(lines)
