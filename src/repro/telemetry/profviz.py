"""Profiler exports: collapsed stacks, speedscope JSON, phase reports.

The sampler (:class:`repro.telemetry.profiling.StackSampler`) accumulates
root→leaf stack tuples with hit counts.  This module turns them into the
two interchange formats flamegraph tooling expects:

- **collapsed stacks** — one ``frame;frame;frame count`` line per unique
  stack, the `flamegraph.pl` / inferno input format;
- **speedscope JSON** — the https://speedscope.app "sampled" profile
  schema (shared frame table + per-sample frame-index lists with
  weights), which renders as an interactive flamegraph in a browser.

Phase reports are written as JSON (``repro-profile-v1``) next to them.
``load_speedscope``/``load_collapsed`` are the validating readers the CI
``profile-smoke`` job uses to assert artifacts are non-empty and
well-formed — mirroring ``events_from_perfetto`` in traceviz.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

__all__ = [
    "collapsed_stacks",
    "write_collapsed",
    "load_collapsed",
    "speedscope_document",
    "write_speedscope",
    "load_speedscope",
    "write_phase_report",
]

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def collapsed_stacks(samples: Dict[Tuple[str, ...], int]) -> str:
    """Collapsed-stacks text: ``root;child;leaf N`` per unique stack.

    Frame names have ``;`` replaced (it is the separator) and lines are
    sorted for deterministic output.
    """
    lines = []
    for stack, count in samples.items():
        if not stack:
            continue
        lines.append(";".join(f.replace(";", ",") for f in stack)
                     + f" {count}")
    return "\n".join(sorted(lines)) + ("\n" if lines else "")


def write_collapsed(path, samples: Dict[Tuple[str, ...], int]) -> int:
    """Write collapsed stacks to ``path``; returns unique-stack count."""
    text = collapsed_stacks(samples)
    with open(path, "w") as fh:
        fh.write(text)
    return sum(1 for line in text.splitlines() if line)


def load_collapsed(path) -> List[Tuple[Tuple[str, ...], int]]:
    """Validating reader: parse a collapsed file back to (stack, count).

    Raises ``ValueError`` on malformed lines — used by the CI smoke job.
    """
    out: List[Tuple[Tuple[str, ...], int]] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            stack_s, sep, count_s = line.rpartition(" ")
            if not sep or not count_s.isdigit() or not stack_s:
                raise ValueError(f"{path}:{lineno}: malformed collapsed "
                                 f"line: {line!r}")
            out.append((tuple(stack_s.split(";")), int(count_s)))
    return out


def speedscope_document(samples: Dict[Tuple[str, ...], int],
                        name: str = "repro profile",
                        interval_s: float = 0.005) -> dict:
    """Build a speedscope "sampled" profile document.

    Each unique stack becomes one sample whose weight is its hit count
    times the sampling interval (unit: seconds) — speedscope renders
    identical adjacent samples merged anyway, so collapsing up front
    keeps files small without changing the flamegraph.
    """
    frame_index: Dict[str, int] = {}
    frames: List[dict] = []
    sample_rows: List[List[int]] = []
    weights: List[float] = []
    for stack, count in sorted(samples.items()):
        if not stack:
            continue
        row = []
        for frame in stack:
            idx = frame_index.get(frame)
            if idx is None:
                idx = frame_index[frame] = len(frames)
                frames.append({"name": frame})
            row.append(idx)
        sample_rows.append(row)
        weights.append(count * interval_s)
    total = sum(weights)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [{
            "type": "sampled",
            "name": name,
            "unit": "seconds",
            "startValue": 0,
            "endValue": total,
            "samples": sample_rows,
            "weights": weights,
        }],
    }


def write_speedscope(path, samples: Dict[Tuple[str, ...], int],
                     name: str = "repro profile",
                     interval_s: float = 0.005) -> dict:
    doc = speedscope_document(samples, name=name, interval_s=interval_s)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc


def load_speedscope(path) -> dict:
    """Validating reader for speedscope files (CI smoke + tests).

    Checks the structural invariants a renderer relies on: schema URL,
    a sampled profile, samples/weights the same length, and every frame
    index inside the shared frame table.  Returns the parsed document.
    """
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("$schema") != SPEEDSCOPE_SCHEMA:
        raise ValueError(f"{path}: not a speedscope document "
                         f"($schema={doc.get('$schema')!r})")
    profiles = doc.get("profiles") or []
    if not profiles:
        raise ValueError(f"{path}: no profiles")
    frames = (doc.get("shared") or {}).get("frames") or []
    for prof in profiles:
        if prof.get("type") != "sampled":
            raise ValueError(f"{path}: profile type {prof.get('type')!r} "
                             "(expected 'sampled')")
        samples = prof.get("samples") or []
        weights = prof.get("weights") or []
        if len(samples) != len(weights):
            raise ValueError(f"{path}: {len(samples)} samples vs "
                             f"{len(weights)} weights")
        for row in samples:
            for idx in row:
                if not 0 <= idx < len(frames):
                    raise ValueError(f"{path}: frame index {idx} outside "
                                     f"shared.frames[{len(frames)}]")
    return doc


def write_phase_report(path, report) -> dict:
    """Persist a :class:`~repro.telemetry.profiling.PhaseReport` as JSON."""
    doc = report.to_dict()
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
    return doc
