"""Performance-attribution profiler: phase accounting + stack sampling.

The bench records (``BENCH_*.json``) say *that* a run got slower; this
module says *where*.  It has two independent modes, selectable at
:func:`enable` time:

- **phase** — wall time attributed to simulator phases: every event the
  engine dispatches is charged to ``engine/<callback>`` (one
  ``perf_counter_ns`` per event, timestamps chained so the loop pays a
  single clock read), and instrumented subsystems open explicit phase
  frames (``p4.process``, ``cp.extract/<metric>``, ``logstash.process``,
  ``archiver.sink``, ...).  Frames nest through a stack, so every phase
  accumulates both **cumulative** time (with children) and **self** time
  (children subtracted) plus an event count — the numbers a refactor is
  judged against (docs/profiling.md).
- **sample** — a background-thread stack sampler over
  ``sys._current_frames()`` with collapsed-stacks and speedscope JSON
  export (:mod:`repro.telemetry.profviz`), plus tracemalloc-backed
  allocation snapshots and GC-pause counters for the allocation half of
  the performance story.

Like :mod:`repro.telemetry` and :mod:`~repro.telemetry.provenance`, the
subsystem is **off by default and binds at construction time**:
instrumented components cache :func:`profiler` (``None`` when disabled)
once, so the disabled hot path costs a single ``is None`` test —
enforced at ≤2 % by ``benchmarks/test_profiling_overhead.py``, with the
default phase mode held to ≤10 % end to end.

Phase accounting runs from :func:`enable`; :meth:`Profiler.start` /
:meth:`Profiler.stop` bound the wall-time window and the sampler /
GC / allocation capture.  When provenance tracing is live at
:func:`enable` time, slow phase frames also land on the Perfetto span
track (PR 4's export), so packets and profile share one timeline.
"""

from __future__ import annotations

import gc
import sys
import threading
import time
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

__all__ = [
    "Profiler",
    "PhaseRow",
    "PhaseReport",
    "StackSampler",
    "MODES",
    "DETAILS",
    "enable",
    "disable",
    "active",
    "profiler",
    "reset",
]

MODES = ("phase", "sample", "both")

#: Phase granularity.  ``block`` keeps per-packet cost to one frame per
#: pipeline traversal (the ≤10 % always-on budget); ``stage`` opens a
#: frame per parser/stage/TAP hop — diagnosis mode, no budget.
DETAILS = ("block", "stage")

DEFAULT_SAMPLE_INTERVAL_S = 0.005
_pcn = time.perf_counter_ns  # one LOAD_GLOBAL instead of two LOAD_ATTRs
#: Phase frames at least this slow (wall ns) are exported as Perfetto
#: spans when provenance tracing shares its span log.
DEFAULT_SPAN_MIN_WALL_NS = 200_000
_MAX_STACK_DEPTH = 96


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.3f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{int(ns)}ns"


class PhaseRow(NamedTuple):
    """One phase's accounting: ``self_ns`` excludes nested phases,
    ``cum_ns`` includes them, ``count`` is dispatches/frames."""

    phase: str
    count: int
    self_ns: int
    cum_ns: int

    @property
    def ns_per_event(self) -> float:
        return self.cum_ns / self.count if self.count else 0.0


class PhaseReport:
    """A run's phase attribution, ready to render or persist."""

    def __init__(self, rows: List[PhaseRow], wall_ns: int,
                 sources: Dict[str, int], gc_pauses: int, gc_pause_ns: int,
                 sample_count: int = 0,
                 alloc_top: Optional[List[dict]] = None) -> None:
        self.rows = sorted(rows, key=lambda r: r.self_ns, reverse=True)
        self.wall_ns = wall_ns
        self.sources = sources
        self.gc_pauses = gc_pauses
        self.gc_pause_ns = gc_pause_ns
        self.sample_count = sample_count
        self.alloc_top = alloc_top or []

    @property
    def total_self_ns(self) -> int:
        return sum(r.self_ns for r in self.rows)

    def row(self, phase: str) -> Optional[PhaseRow]:
        for r in self.rows:
            if r.phase == phase:
                return r
        return None

    def phases_for_bench(self) -> Dict[str, Dict[str, int]]:
        """The shape BENCH records carry (``benchmarks/trend.py`` compares
        these per phase to localize a regression)."""
        return {r.phase: {"self_ns": r.self_ns, "cum_ns": r.cum_ns,
                          "events": r.count} for r in self.rows}

    def to_dict(self) -> dict:
        return {
            "schema": "repro-profile-v1",
            "wall_ns": self.wall_ns,
            "total_self_ns": self.total_self_ns,
            "phases": [r._asdict() for r in self.rows],
            "sources": dict(self.sources),
            "gc": {"pauses": self.gc_pauses, "pause_ns": self.gc_pause_ns},
            "sample_count": self.sample_count,
            "alloc_top": list(self.alloc_top),
        }

    def render_table(self, top: Optional[int] = None) -> str:
        total = self.total_self_ns or 1
        heads = ("phase", "events", "self", "cum", "ns/event", "self%")
        rows = []
        for r in self.rows[:top]:
            rows.append((r.phase, f"{r.count}", _fmt_ns(r.self_ns),
                         _fmt_ns(r.cum_ns), _fmt_ns(r.ns_per_event),
                         f"{100.0 * r.self_ns / total:.1f}"))
        widths = [max(len(heads[i]), *(len(row[i]) for row in rows))
                  if rows else len(heads[i]) for i in range(6)]
        lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(heads))]
        lines.append("-" * len(lines[0]))
        for row in rows:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(6)))
        accounted = _fmt_ns(self.total_self_ns)
        wall = _fmt_ns(self.wall_ns) if self.wall_ns else "?"
        lines.append(f"accounted {accounted} across {len(self.rows)} phases "
                     f"(profiled window {wall}); gc: {self.gc_pauses} pauses, "
                     f"{_fmt_ns(self.gc_pause_ns)}")
        if self.sources:
            lines.append("op sources: " + ", ".join(
                f"{name}={count}" for name, count in
                sorted(self.sources.items(), key=lambda kv: -kv[1])[:8]))
        return "\n".join(lines)


class StackSampler:
    """Background-thread sampler of one target thread's Python stack.

    Samples accumulate as root→leaf frame-name tuples with hit counts —
    exactly the collapsed-stacks shape flamegraph tools consume (see
    :mod:`repro.telemetry.profviz` for the exporters).  Sampling runs on
    a daemon thread and costs the target thread nothing beyond normal
    GIL switches.
    """

    def __init__(self, interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
                 target_ident: Optional[int] = None) -> None:
        if interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self.interval_s = interval_s
        self.target_ident = target_ident
        self.samples: Dict[Tuple[str, ...], int] = {}
        self.sample_count = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @staticmethod
    def _frame_name(code) -> str:
        fname = code.co_filename.replace("\\", "/")
        short = "/".join(fname.rsplit("/", 2)[-2:])
        return f"{code.co_name} ({short}:{code.co_firstlineno})"

    def sample_once(self) -> Optional[Tuple[str, ...]]:
        """Take one sample of the target thread (also used directly by
        tests, no thread required)."""
        frame = sys._current_frames().get(self.target_ident)
        if frame is None:
            return None
        stack: List[str] = []
        depth = 0
        while frame is not None and depth < _MAX_STACK_DEPTH:
            stack.append(self._frame_name(frame.f_code))
            frame = frame.f_back
            depth += 1
        key = tuple(reversed(stack))  # root → leaf
        self.samples[key] = self.samples.get(key, 0) + 1
        self.sample_count += 1
        return key

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def start(self) -> None:
        if self._thread is not None:
            return
        if self.target_ident is None:
            self.target_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-prof-sampler")
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None


class Profiler:
    """Two-mode performance-attribution profiler (see module docstring).

    Phase-accounting internals are plain lists mutated in place —
    ``[cum_ns, self_ns, count]`` cells — because the engine charges one
    cell per dispatched event and a dataclass per event would itself be
    a hot-path cost worth profiling.
    """

    def __init__(self, mode: str = "phase", detail: str = "block",
                 sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
                 span_min_wall_ns: int = DEFAULT_SPAN_MIN_WALL_NS,
                 alloc: bool = False) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if detail not in DETAILS:
            raise ValueError(f"detail must be one of {DETAILS}, got {detail!r}")
        self.mode = mode
        self.phases = mode in ("phase", "both")
        self.sampling = mode in ("sample", "both")
        self.detail = detail
        self.detail_stage = detail == "stage"
        self.alloc = alloc

        # phase -> [cum_ns, self_ns, count]; engine dispatch cells are
        # additionally cached per callback function for O(1) charging.
        self._cells: Dict[str, List[int]] = {}
        self._fn_cells: Dict[object, List[int]] = {}
        self._stack: List[list] = []  # [phase, t0_wall, child_ns, t0_sim]
        #: Wall ns spent inside *root-level* phase frames — the engine's
        #: profiled loop reads this around each dispatch to split an
        #: event's time into self vs nested-subsystem work.
        self.nested_ns = 0

        self.span_min_wall_ns = span_min_wall_ns
        self.span_log: List[dict] = []
        self._clock = None  # any object with an integer ``.now`` (a Simulator)

        self._sources: Dict[str, Callable[[], int]] = {}

        self.sampler = (StackSampler(interval_s=sample_interval_s)
                        if self.sampling else None)
        self.gc_pauses = 0
        self.gc_pause_ns = 0
        self._gc_t0: Optional[int] = None
        self.alloc_top: List[dict] = []
        self._started = False
        self._t0_wall: Optional[int] = None
        self.wall_ns = 0

    # -- clock / construction-time wiring ----------------------------------

    def bind_clock(self, clock) -> None:
        """Called by the Simulator at construction so phase spans carry
        simulated timestamps (last-built simulator wins)."""
        self._clock = clock

    def add_source(self, name: str, fn: Callable[[], int]) -> None:
        """Register an op-count source (register/sketch/digest tallies)
        read lazily at report time — zero hot-path cost."""
        self._sources[name] = fn

    # -- phase accounting ---------------------------------------------------

    def cell(self, phase: str) -> List[int]:
        """The ``[cum_ns, self_ns, count]`` accumulator for a phase."""
        c = self._cells.get(phase)
        if c is None:
            c = self._cells[phase] = [0, 0, 0]
        return c

    def dispatch_cell(self, key, fn) -> List[int]:
        """Engine-loop cell for one callback, labeled by qualname and
        cached under the underlying function object."""
        label = "engine/" + getattr(fn, "__qualname__", repr(fn))
        c = self.cell(label)
        self._fn_cells[key] = c
        return c

    def begin(self, phase: str) -> None:
        """Open a phase frame.  Pair with :meth:`end` (try/finally at
        call sites); frames nest through the stack."""
        clock = self._clock
        self._stack.append(
            [phase, _pcn(), 0, clock.now if clock is not None else 0])

    def end(self) -> None:
        t_now = _pcn()
        stack = self._stack
        frame = stack.pop()
        elapsed = t_now - frame[1]
        cells = self._cells
        cell = cells.get(frame[0])
        if cell is None:
            cell = cells[frame[0]] = [0, 0, 0]
        cell[0] += elapsed
        cell[1] += elapsed - frame[2]
        cell[2] += 1
        if stack:
            stack[-1][2] += elapsed
            return
        # Root frames feed the engine loop's nested-time delta, and only
        # root frames are wide enough to be worth a Perfetto span.
        self.nested_ns += elapsed
        if elapsed >= self.span_min_wall_ns and self._clock is not None:
            self.span_log.append({
                "path": "profile/" + frame[0],
                "t0_ns": frame[3],
                "dur_ns": self._clock.now - frame[3],
                "wall_ns": elapsed,
            })

    def phase(self, name: str):
        """Context-manager convenience over begin/end (cold paths)."""
        return _PhaseCtx(self, name)

    def depth(self) -> int:
        return len(self._stack)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Open the profiled window: wall clock, GC callbacks, sampler
        thread and (opt-in) tracemalloc."""
        if self._started:
            return
        self._started = True
        self._t0_wall = time.perf_counter_ns()
        gc.callbacks.append(self._on_gc)
        if self.alloc:
            import tracemalloc
            if not tracemalloc.is_tracing():
                tracemalloc.start()
        if self.sampler is not None:
            if self.sampler.target_ident is None:
                self.sampler.target_ident = threading.get_ident()
            self.sampler.start()

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        self.wall_ns += time.perf_counter_ns() - (self._t0_wall or 0)
        try:
            gc.callbacks.remove(self._on_gc)
        except ValueError:  # pragma: no cover - defensive
            pass
        if self.sampler is not None:
            self.sampler.stop()
        if self.alloc:
            import tracemalloc
            if tracemalloc.is_tracing():
                snap = tracemalloc.take_snapshot()
                tracemalloc.stop()
                self.alloc_top = [
                    {"where": str(stat.traceback), "size_kib":
                     round(stat.size / 1024.0, 1), "count": stat.count}
                    for stat in snap.statistics("lineno")[:15]
                ]

    def running(self):
        """``with prof.running(): scenario.run(...)`` — start/stop pair."""
        return _RunCtx(self)

    def _on_gc(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._gc_t0 = time.perf_counter_ns()
        elif self._gc_t0 is not None:
            self.gc_pauses += 1
            self.gc_pause_ns += time.perf_counter_ns() - self._gc_t0
            self._gc_t0 = None

    # -- reporting ----------------------------------------------------------

    def report(self) -> PhaseReport:
        rows = [PhaseRow(phase, c[2], c[1], c[0])
                for phase, c in self._cells.items() if c[2]]
        sources = {name: int(fn()) for name, fn in self._sources.items()}
        return PhaseReport(
            rows, wall_ns=self.wall_ns, sources=sources,
            gc_pauses=self.gc_pauses, gc_pause_ns=self.gc_pause_ns,
            sample_count=self.sampler.sample_count if self.sampler else 0,
            alloc_top=self.alloc_top)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Profiler(mode={self.mode}, detail={self.detail}, "
                f"phases={len(self._cells)}, "
                f"samples={self.sampler.sample_count if self.sampler else 0})")


class _PhaseCtx:
    __slots__ = ("prof", "name")

    def __init__(self, prof: Profiler, name: str) -> None:
        self.prof = prof
        self.name = name

    def __enter__(self):
        self.prof.begin(self.name)
        return self

    def __exit__(self, *exc) -> bool:
        self.prof.end()
        return False


class _RunCtx:
    __slots__ = ("prof",)

    def __init__(self, prof: Profiler) -> None:
        self.prof = prof

    def __enter__(self):
        self.prof.start()
        return self.prof

    def __exit__(self, *exc) -> bool:
        self.prof.stop()
        return False


# -- module-global switch (mirrors repro.telemetry / provenance) --------------

_profiler: Optional[Profiler] = None


def enable(mode: str = "phase", **kwargs) -> Profiler:
    """Turn profiling on with a fresh profiler.  Components constructed
    *after* this call bind it; already-built components stay dark (the
    same contract as :func:`repro.telemetry.enable`).

    When provenance tracing is already live, the profiler shares its
    span log so slow phase frames export onto the same Perfetto timeline
    as the packet events (PR 4's ``write_perfetto``).
    """
    global _profiler
    prev = _profiler
    if prev is not None:
        prev.stop()
    _profiler = Profiler(mode=mode, **kwargs)
    from repro.telemetry import provenance
    tr = provenance.tracer()
    if tr is not None:
        _profiler.span_log = tr.span_log
    _register_metrics(_profiler)
    return _profiler


def _register_metrics(prof: Profiler) -> None:
    """When telemetry is also on, mirror phase cells into the registry
    (``repro_profile_phase_ns{phase,kind}``) at collect time, so phases
    show up in snapshots, the watch view and the archive push path."""
    from repro import telemetry
    if not telemetry.enabled():
        return
    reg = telemetry.registry()
    phase_ns = reg.gauge(
        "repro_profile_phase_ns",
        "wall time attributed to each profiled phase (self/cum)",
        labels=("phase", "kind"))
    phase_events = reg.gauge(
        "repro_profile_phase_events",
        "dispatches/frames counted per profiled phase",
        labels=("phase",))

    def collect(_reg, prof=prof) -> None:
        if _profiler is not prof:  # superseded profiler: stop publishing
            return
        for phase, c in prof._cells.items():
            phase_ns.labels(phase, "cum").set(c[0])
            phase_ns.labels(phase, "self").set(c[1])
            phase_events.labels(phase).set(c[2])

    reg.add_collector(collect)


def disable() -> None:
    global _profiler
    if _profiler is not None:
        _profiler.stop()
    _profiler = None


def active() -> bool:
    return _profiler is not None


def profiler() -> Optional[Profiler]:
    """The live profiler, or None when disabled — bind once at
    construction: ``self._prof = profiling.profiler()``."""
    return _profiler


def reset() -> None:
    """Tests: drop the profiler (lifecycle alias, like provenance)."""
    disable()
