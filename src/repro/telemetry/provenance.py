"""Per-packet provenance tracing: windowed telemetry + triggered capture.

The metrics the instrument reports are *aggregates* — a throughput
sample says **that** bytes moved, not **which** packets moved them or
where in the TAP → parser → pipeline → register → report chain the
signal originated.  This module adds the missing explanation layer:
every simulated packet gets a stable **trace id**, inherited for free by
TAP mirror copies (a :class:`~repro.netsim.tap.MirrorCopy` wraps the
same :class:`~repro.netsim.packet.Packet` object), and every layer the
packet crosses appends a causally-linked :class:`TraceEvent`:

- netsim: enqueue / dequeue / drop with the queue depth at that instant;
- P4: parser accept/reject, each pipeline stage entered;
- registers/sketch: writes with old → new values;
- control plane: the extraction that *read* the slot a packet wrote
  (linked through a per-cell last-writer map);
- perfSONAR: the Logstash/archiver record that carried the measurement.

Storage follows PrintQueue's dual-time-window design: a **coarse**
always-on ring holding the events of probabilistically sampled packets
(long horizon, low cost), and a **fine** high-resolution ring holding
every event of the packets matching the flow/packet filter (or all
packets when unfiltered).  Capture is **event-triggered**: an alert
raise, a microburst detection, a loss-regression increment or an oracle
mismatch from the validation checker calls :meth:`ProvenanceTracer.fire`
which freezes the fine window into a :class:`FrozenWindow` dump.

Like :mod:`repro.telemetry`, the subsystem is off by default and binds
at construction time: instrumented components cache
``provenance.tracer()`` (``None`` when disabled) once, so the disabled
hot path costs a single ``is None`` test — enforced at ≤2 % by
``benchmarks/test_trace_overhead.py``.

Determinism: trace ids are assigned *densely per tracer* in first-seen
order (not from the process-global packet uid counter), so two runs of
the same seeded scenario with fresh tracers produce identical traces.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

__all__ = [
    "TraceEvent",
    "FrozenWindow",
    "ProvenanceTracer",
    "TRIGGERS",
    "LAYERS",
    "enable",
    "disable",
    "active",
    "tracer",
    "reset",
]

#: Event-trigger reasons a tracer can arm (see :meth:`ProvenanceTracer.fire`).
TRIGGERS = ("microburst", "alert", "loss-regression", "oracle-mismatch")

#: Layers events are recorded under (one Perfetto process track each).
LAYERS = ("netsim", "p4", "register", "control-plane", "archiver")

DEFAULT_COARSE_WINDOW = 4096
DEFAULT_FINE_WINDOW = 8192
DEFAULT_SAMPLE_RATE = 1.0 / 64.0
DEFAULT_MAX_DUMPS = 8

_M64 = (1 << 64) - 1


class TraceEvent(NamedTuple):
    """One causally-linked observation of a packet (or its measurement).

    ``seq`` is a per-tracer monotonic sequence number — the total order
    events were recorded in, and the dedup key when an event sits in
    both windows.  ``detail`` carries event-specific context (queue
    depth, old/new register values, ...) as a plain JSON-able dict.
    """

    seq: int
    trace_id: int
    t_ns: int
    layer: str
    kind: str
    where: str
    detail: dict


class FrozenWindow(NamedTuple):
    """A fine-window snapshot taken when a trigger fired."""

    reason: str
    t_ns: int
    events: Tuple[TraceEvent, ...]
    detail: dict


class ProvenanceTracer:
    """Dual-window per-packet event recorder.

    Parameters
    ----------
    coarse_window, fine_window:
        Ring sizes in events.  ``fine_window=0`` disables the fine ring
        entirely (coarse-only mode, the cheapest always-on setting).
    sample_rate:
        Fraction of trace ids whose events enter the coarse ring,
        decided by a seeded integer hash of the trace id — per packet,
        deterministic, no RNG state on the hot path.
    flow:
        A :class:`~repro.netsim.packet.FiveTuple`; the fine ring keeps
        only packets of this flow **or its reverse** (so the ACK stream
        that closes the RTT loop is captured too).
    packet:
        A single trace id; the fine ring keeps only that packet.
    triggers:
        Which :data:`TRIGGERS` freeze the fine window when fired.
    """

    __slots__ = (
        "sample_rate", "seed", "flow", "packet", "armed", "max_dumps",
        "coarse", "fine", "dumps", "fires", "_writer_maps", "span_log",
        "events_recorded", "_seq", "_coarse_on", "_fine_on",
        "_sample_threshold", "_flow_keys", "_filtered", "_ids", "_next_id",
        "_fine_ids", "_decisions", "_ctx_id", "_ctx_t", "_ctx_fine",
        "_ctx_coarse", "_ctx_rec", "_report", "_last_extract_id",
    )

    def __init__(
        self,
        coarse_window: int = DEFAULT_COARSE_WINDOW,
        fine_window: int = DEFAULT_FINE_WINDOW,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
        seed: int = 1,
        flow=None,
        packet: Optional[int] = None,
        triggers: Sequence[str] = TRIGGERS,
        max_dumps: int = DEFAULT_MAX_DUMPS,
    ) -> None:
        if coarse_window < 0 or fine_window < 0:
            raise ValueError("window sizes cannot be negative")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        unknown = set(triggers) - set(TRIGGERS)
        if unknown:
            raise ValueError(f"unknown triggers {sorted(unknown)}; "
                             f"choose from {TRIGGERS}")
        self.sample_rate = sample_rate
        self.seed = seed
        self.flow = flow
        self.packet = packet
        self.armed: Set[str] = set(triggers)
        self.max_dumps = max_dumps
        self.coarse: Deque[TraceEvent] = deque(maxlen=max(coarse_window, 0))
        self.fine: Deque[TraceEvent] = deque(maxlen=max(fine_window, 0))
        self.dumps: List[FrozenWindow] = []
        self.fires: List[Tuple[str, int]] = []  # every fire(), armed or not

        # Cross-layer linkage: which trace id last wrote each register
        # cell — how a control-plane extraction names its packet.  One
        # preallocated int list per register array (see writer_map), so
        # the per-write store on the unsampled hot path is a plain
        # list[int] assignment, not a tuple-keyed dict insert.
        self._writer_maps: Dict[str, List[int]] = {}

        # Satellite bridge: telemetry spans append here when attached
        # (see enable()); exported as a separate Perfetto track.
        self.span_log: List[dict] = []

        self.events_recorded = 0
        self._seq = 0
        self._coarse_on = coarse_window > 0 and sample_rate > 0.0
        self._fine_on = fine_window > 0
        self._sample_threshold = int(sample_rate * float(1 << 32))
        self._flow_keys = None
        if flow is not None:
            self._flow_keys = {flow, flow.reversed()}
        self._filtered = packet is not None or flow is not None
        # Dense per-tracer trace ids: packet uid -> trace id, assigned in
        # first-seen order so equal-seed runs get identical ids.
        self._ids: Dict[int, int] = {}
        self._next_id = 1
        # Trace ids that matched the fine filter (resolves non-packet
        # contexts like control reads back to a fine/coarse decision).
        self._fine_ids: Set[int] = set()
        # uid -> (tid, fine, coarse): the full recording decision, made
        # once per packet.  Filters and sampling depend only on immutable
        # packet identity, and a packet traverses the pipeline at least
        # twice (ingress + egress TAP copies), so later traversals pay
        # one dict probe instead of re-hashing the sample decision.
        self._decisions: Dict[int, Tuple[int, bool, bool]] = {}
        # Active packet context (pipeline traversal).
        self._ctx_id = 0
        self._ctx_t = 0
        self._ctx_fine = False
        self._ctx_coarse = False
        # Hot-path summary flag: is the active context recorded at all?
        # Hooks with per-stage/per-write cost branch on this one attribute
        # instead of calling in (see P4Pipeline._process_traced).
        self._ctx_rec = False
        # Active report context + the most recent control-read linkage.
        self._report: Optional[Tuple[int, int]] = None
        self._last_extract_id = 0

    # -- identity ----------------------------------------------------------

    def trace_id(self, pkt) -> int:
        """The packet's dense trace id, assigned on first sight.  Mirror
        copies share the original Packet object, so they inherit the id
        with no extra bookkeeping."""
        uid = pkt.uid
        tid = self._ids.get(uid)
        if tid is None:
            tid = self._ids[uid] = self._next_id
            self._next_id += 1
        return tid

    def _sampled(self, tid: int) -> bool:
        """Seeded splitmix-style hash of the trace id vs the sample rate:
        deterministic, stateless, uniform."""
        x = (tid + self.seed * 0x9E3779B97F4A7C15) & _M64
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
        x ^= x >> 31
        return (x & 0xFFFFFFFF) < self._sample_threshold

    def _decide(self, pkt, tid: int) -> Tuple[bool, bool]:
        """(fine, coarse) recording decision for one packet."""
        if self.packet is not None:
            fine = tid == self.packet
        elif self._flow_keys is not None:
            fine = pkt.five_tuple in self._flow_keys
        else:
            fine = True
        if fine and self._filtered:
            self._fine_ids.add(tid)
        return fine and self._fine_on, self._coarse_on and self._sampled(tid)

    def _decision(self, pkt) -> Tuple[int, bool, bool]:
        """Memoised (trace_id, fine, coarse) for a packet in hand."""
        dec = self._decisions.get(pkt.uid)
        if dec is None:
            tid = self.trace_id(pkt)
            fine, coarse = self._decide(pkt, tid)
            dec = self._decisions[pkt.uid] = (tid, fine, coarse)
        return dec

    def _decide_by_id(self, tid: int) -> Tuple[bool, bool]:
        """Same decision when only the trace id is known (control reads,
        report shipping) — filter membership was memoised at packet time."""
        fine = (not self._filtered) or tid in self._fine_ids
        return fine and self._fine_on, self._coarse_on and self._sampled(tid)

    # -- recording ---------------------------------------------------------

    def _emit(self, tid: int, t_ns: int, layer: str, kind: str, where: str,
              detail: dict, fine: bool, coarse: bool) -> None:
        ev = TraceEvent(self._seq, tid, t_ns, layer, kind, where, detail)
        self._seq += 1
        self.events_recorded += 1
        if fine:
            self.fine.append(ev)
        if coarse:
            self.coarse.append(ev)

    def wants(self, pkt) -> bool:
        """Cheap pre-test for hot hook sites: would :meth:`packet_event`
        record anything for this packet?  Call sites gate on this before
        building the detail kwargs, so unsampled packets cost one dict
        probe per hop instead of a full recording call."""
        dec = self._decisions.get(pkt.uid)
        if dec is None:
            dec = self._decision(pkt)
        return dec[1] or dec[2]

    def packet_event(self, layer: str, kind: str, where: str, pkt,
                     t_ns: int, **detail) -> None:
        """Record one event for a packet in hand (netsim/TAP hook form)."""
        tid, fine, coarse = self._decision(pkt)
        if fine or coarse:
            self._emit(tid, t_ns, layer, kind, where, detail, fine, coarse)

    # -- packet context (one pipeline traversal) ---------------------------

    def begin_packet(self, pkt, t_ns: int) -> None:
        """Open a traversal context: parser/stage/register/sketch events
        recorded until :meth:`end_packet` belong to this packet without
        threading arguments through every layer."""
        tid, fine, coarse = self._decision(pkt)
        self._ctx_id = tid
        self._ctx_t = t_ns
        self._ctx_fine = fine
        self._ctx_coarse = coarse
        self._ctx_rec = fine or coarse

    def end_packet(self) -> None:
        self._ctx_id = 0
        self._ctx_fine = self._ctx_coarse = self._ctx_rec = False

    @property
    def in_packet(self) -> bool:
        return self._ctx_id != 0

    def event(self, layer: str, kind: str, where: str, **detail) -> None:
        """Record one event under the active packet context (no-op
        outside a traversal)."""
        if self._ctx_rec:
            self._emit(self._ctx_id, self._ctx_t, layer, kind, where, detail,
                       self._ctx_fine, self._ctx_coarse)

    def writer_map(self, name: str, size: int) -> List[int]:
        """The last-writer list for one register array (cell index →
        trace id, 0 = never written by a traced packet).  Instrumented
        registers cache this at construction so the unsampled-packet
        write hook is a single list store."""
        arr = self._writer_maps.get(name)
        if arr is None:
            arr = self._writer_maps[name] = [0] * size
        elif len(arr) < size:
            arr.extend([0] * (size - len(arr)))
        return arr

    def register_write(self, name: str, index: int, old: int, new: int) -> None:
        """A data-plane register cell changed under the packet context.
        The last-writer map updates for *every* traced write (sampled or
        not) — it is the linkage the control plane resolves later."""
        tid = self._ctx_id
        if not tid:
            return
        self.writer_map(name, index + 1)[index] = tid
        if self._ctx_rec:
            self._emit(tid, self._ctx_t, "register", "write",
                       f"{name}[{index}]", {"old": old, "new": new},
                       self._ctx_fine, self._ctx_coarse)

    # -- control-plane linkage ---------------------------------------------

    def control_read(self, name: str, index: int, t_ns: int, **detail) -> int:
        """The control plane extracted a register slot.  Resolves the
        packet that last wrote the cell and remembers it so the report
        shipped from this extraction inherits the trace id.  Returns the
        resolved trace id (0 = nothing traced wrote the cell)."""
        arr = self._writer_maps.get(name)
        tid = arr[index] if arr is not None and index < len(arr) else 0
        self._last_extract_id = tid
        if tid:
            fine, coarse = self._decide_by_id(tid)
            if fine or coarse:
                self._emit(tid, t_ns, "control-plane", "extract",
                           f"{name}[{index}]", detail, fine, coarse)
        return tid

    def begin_report(self, t_ns: int, trace_id: Optional[int] = None) -> None:
        """Open a report context around shipping one measurement record.
        The trace id defaults to the active packet (digest handlers run
        inside the traversal that emitted the digest) or, failing that,
        the most recent control read."""
        if trace_id is None:
            trace_id = self._ctx_id or self._last_extract_id
        self._report = (trace_id, t_ns)

    def end_report(self) -> None:
        self._report = None

    def report_event(self, layer: str, kind: str, where: str, **detail) -> None:
        """Record one event under the report context (Logstash filters,
        the archiver's index write).  No-op outside a report or when the
        report has no traced packet behind it."""
        if self._report is None:
            return
        tid, t_ns = self._report
        if not tid:
            return
        fine, coarse = self._decide_by_id(tid)
        if fine or coarse:
            self._emit(tid, t_ns, layer, kind, where, detail, fine, coarse)

    # -- triggers ----------------------------------------------------------

    def fire(self, reason: str, t_ns: int, **detail) -> Optional[FrozenWindow]:
        """An anomalous event happened.  If ``reason`` is armed, freeze
        the fine window into a dump (bounded by ``max_dumps``)."""
        self.fires.append((reason, t_ns))
        if reason not in self.armed or len(self.dumps) >= self.max_dumps:
            return None
        win = FrozenWindow(reason=reason, t_ns=t_ns,
                           events=tuple(self.fine), detail=detail)
        self.dumps.append(win)
        return win

    # -- reads -------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """Both windows merged, deduplicated (a sampled packet matching
        the filter lands in both) and ordered by recording sequence."""
        seen: Set[int] = set()
        out: List[TraceEvent] = []
        for ev in list(self.coarse) + list(self.fine):
            if ev.seq not in seen:
                seen.add(ev.seq)
                out.append(ev)
        out.sort(key=lambda ev: ev.seq)
        return out

    def events_for(self, trace_id: int) -> List[TraceEvent]:
        return [ev for ev in self.events() if ev.trace_id == trace_id]

    def layers_for(self, trace_id: int) -> Set[str]:
        """Which layers one packet's surviving events span — the
        acceptance check for end-to-end linkage."""
        return {ev.layer for ev in self.events_for(trace_id)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ProvenanceTracer(ids={len(self._ids)}, "
                f"events={self.events_recorded}, coarse={len(self.coarse)}, "
                f"fine={len(self.fine)}, dumps={len(self.dumps)})")


# -- module-global switch (mirrors repro.telemetry) ---------------------------

_tracer: Optional[ProvenanceTracer] = None


def enable(**kwargs) -> ProvenanceTracer:
    """Turn provenance tracing on with a fresh tracer.  Components
    constructed *after* this call bind the tracer; already-built
    components stay dark (same contract as :func:`repro.telemetry.enable`).

    Also attaches the span → trace bridge: completed telemetry spans are
    appended to the tracer's ``span_log`` so they export as their own
    Perfetto track next to the packet events.
    """
    global _tracer
    _tracer = ProvenanceTracer(**kwargs)
    from repro import telemetry
    telemetry.tracer().span_log = _tracer.span_log
    return _tracer


def disable() -> None:
    global _tracer
    if _tracer is not None:
        from repro import telemetry
        if telemetry.tracer().span_log is _tracer.span_log:
            telemetry.tracer().span_log = None
    _tracer = None


def active() -> bool:
    return _tracer is not None


def tracer() -> Optional[ProvenanceTracer]:
    """The live tracer, or None when disabled — bind once at
    construction: ``self._trace = provenance.tracer()``."""
    return _tracer


def reset() -> None:
    """Tests: drop the tracer (alias of :func:`disable`, named to match
    the telemetry module's lifecycle API)."""
    disable()
