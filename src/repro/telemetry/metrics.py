"""Metric primitives and the registry.

Three instrument types, mirroring the Prometheus data model the paper's
own report pipeline (Logstash → OpenSearch → Grafana) consumes:

- :class:`Counter` — monotonically increasing float/int total;
- :class:`Gauge` — a value that can go up and down (or be *pulled* from a
  component at snapshot time via a collector callback);
- :class:`Histogram` — fixed **log-scale** bucket boundaries chosen at
  construction, so ``observe()`` is one ``bisect`` + two adds and never
  allocates.  Latency histograms share :data:`LATENCY_BUCKETS_NS`
  (powers of four from 64 ns to ~4.4 s) so every span/stage timing is
  comparable.

Instruments are grouped into labeled *families* (``name`` + fixed label
names → one child per label-value combination).  Child lookup is a dict
hit on a tuple; cardinality is capped so a runaway label (e.g. a flow ID
used as a label value) fails loudly instead of eating memory.

The registry itself is dumb on purpose: components own their hot
counters; pull-style collectors registered with
:meth:`MetricsRegistry.add_collector` copy component-local tallies into
gauges only when a snapshot is taken.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "TelemetryError",
    "LATENCY_BUCKETS_NS",
    "SIZE_BUCKETS",
]

# Powers of 4: 64 ns, 256 ns, 1 µs, ... ~4.4 s.  13 buckets + overflow.
LATENCY_BUCKETS_NS: Tuple[float, ...] = tuple(float(4 ** i) for i in range(3, 17))

# Powers of 2 for counts/sizes: 1, 2, 4, ... 65536.
SIZE_BUCKETS: Tuple[float, ...] = tuple(float(2 ** i) for i in range(0, 17))

DEFAULT_MAX_SERIES = 256


class TelemetryError(RuntimeError):
    """Misuse of the metrics API (type clash, label clash, cardinality)."""


class Counter:
    """Monotonic total.  ``inc()`` only; negative increments are errors."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError("counters only go up")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def dump(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Point-in-time value."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0

    def merge(self, other: "Gauge") -> None:
        self.value = other.value

    def dump(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket histogram with log-scale default boundaries.

    ``counts[i]`` holds observations with ``value <= bounds[i]``; the
    final slot is the +Inf overflow.  Bounds are upper edges, matching
    Prometheus ``le`` semantics.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS_NS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise TelemetryError("bucket bounds must be sorted and unique")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-upper-bound estimate of the ``q`` quantile (0..1)."""
        if not 0.0 <= q <= 1.0:
            raise TelemetryError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise TelemetryError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def dump(self) -> dict:
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


_FACTORIES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """``name`` + fixed label names → one child instrument per label set.

    A label-less family has exactly one child (the empty label tuple) and
    proxies ``inc``/``set``/``observe`` straight to it, so
    ``registry.counter("x").inc()`` needs no ``.labels()`` hop.
    """

    __slots__ = ("name", "kind", "help", "label_names", "max_series",
                 "_children", "_buckets")

    def __init__(self, name: str, kind: str, help: str = "",
                 labels: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None,
                 max_series: int = DEFAULT_MAX_SERIES) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(labels)
        self.max_series = max_series
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[tuple, object] = {}
        if not self.label_names:
            self._children[()] = self._make()

    def _make(self):
        if self.kind == "histogram":
            return Histogram(self._buckets or LATENCY_BUCKETS_NS)
        return _FACTORIES[self.kind]()

    def labels(self, *values: str, **kv: str):
        """Child for one label-value combination (created on first use)."""
        if kv:
            if values:
                raise TelemetryError("pass labels positionally or by name, not both")
            try:
                values = tuple(str(kv[n]) for n in self.label_names)
            except KeyError as missing:
                raise TelemetryError(
                    f"{self.name}: missing label {missing}; expects {self.label_names}"
                ) from None
            if len(kv) != len(self.label_names):
                extra = set(kv) - set(self.label_names)
                raise TelemetryError(f"{self.name}: unknown labels {sorted(extra)}")
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.label_names):
            raise TelemetryError(
                f"{self.name}: got {len(values)} label values, "
                f"expects {len(self.label_names)} {self.label_names}"
            )
        child = self._children.get(values)
        if child is None:
            if len(self._children) >= self.max_series:
                raise TelemetryError(
                    f"{self.name}: label cardinality cap ({self.max_series}) hit; "
                    "a per-flow or per-packet value is probably being used as a label"
                )
            child = self._children[values] = self._make()
        return child

    # -- label-less convenience proxies -----------------------------------

    def _solo(self):
        if self.label_names:
            raise TelemetryError(f"{self.name} has labels {self.label_names}; use .labels()")
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self):
        return self._solo().value

    def reset(self) -> None:
        for child in self._children.values():
            child.reset()

    def series(self) -> Iterable[Tuple[tuple, object]]:
        return self._children.items()

    def dump(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "series": [
                {"labels": dict(zip(self.label_names, values)), **child.dump()}
                for values, child in sorted(self._children.items())
            ],
        }


class MetricsRegistry:
    """Named families + pull collectors.  ``snapshot()`` is the only
    read path: it runs every collector, then dumps all families to a
    plain-JSON-serialisable dict the exporters share."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- instrument accessors (idempotent; clash on type/labels) -----------

    def _family(self, name: str, kind: str, help: str, labels: Sequence[str],
                buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind:
                raise TelemetryError(
                    f"{name} already registered as {fam.kind}, not {kind}")
            if fam.label_names != tuple(labels):
                raise TelemetryError(
                    f"{name} already registered with labels {fam.label_names}")
            return fam
        fam = MetricFamily(name, kind, help=help, labels=labels, buckets=buckets)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "", labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        return self._family(name, "histogram", help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    # -- pull-style collection --------------------------------------------

    def add_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """``fn(registry)`` runs at every snapshot — the place to copy a
        component's cheap local tallies into gauges."""
        self._collectors.append(fn)

    def collect(self) -> None:
        for fn in self._collectors:
            fn(self)

    # -- read/maintenance ---------------------------------------------------

    def snapshot(self, collect: bool = True) -> dict:
        if collect:
            self.collect()
        return {"metrics": [f.dump() for f in
                            sorted(self._families.values(), key=lambda f: f.name)]}

    def reset(self) -> None:
        """Zero every instrument; families, labels and collectors stay."""
        for fam in self._families.values():
            fam.reset()

    def __len__(self) -> int:
        return len(self._families)
