"""repro.telemetry — self-observability for the measurement stack.

The system reproduced here is itself a telemetry instrument; this
package watches the instrument.  One process-global
:class:`~repro.telemetry.metrics.MetricsRegistry` plus a
:class:`~repro.telemetry.spans.Tracer` hang off this module, **disabled
by default**: instrumented components test :func:`enabled` once at
construction and cache the result, so the disabled hot path costs a
single ``is None`` check (see ``benchmarks/test_telemetry_overhead.py``
for the enforcement of the ≤10 % budget).

Typical use::

    from repro import telemetry

    telemetry.enable()
    scenario = Scenario(...)          # components built now are instrumented
    scenario.run(40.0)
    print(telemetry.render_table(telemetry.snapshot()))

Naming conventions (see docs/observability.md):

- every family is prefixed ``repro_<subsystem>_``;
- counters end in ``_total``, durations in ``_ns``, sizes in ``_bytes``;
- label values must be low-cardinality (stage/metric/index names —
  never flow IDs or timestamps).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.telemetry.export import (
    from_json,
    histogram_quantile,
    render_table,
    to_json,
    to_prometheus_text,
)
from repro.telemetry.metrics import (
    LATENCY_BUCKETS_NS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    TelemetryError,
)
from repro.telemetry.profiling import (
    PhaseReport,
    PhaseRow,
    Profiler,
    StackSampler,
)
from repro.telemetry.provenance import (
    FrozenWindow,
    ProvenanceTracer,
    TraceEvent,
)
from repro.telemetry.spans import NULL_SPAN, Tracer
from repro.telemetry.timeseries import (
    DEFAULT_INTERVAL_NS,
    DEFAULT_RETENTION,
    TelemetrySampler,
    TimeSeries,
    TimeSeriesPoint,
    TimeSeriesStore,
)
from repro.telemetry.serve import (
    PROM_CONTENT_TYPE,
    TelemetryHTTPServer,
    TelemetryPusher,
)
from repro.telemetry.watch import render_watch, sparkline

__all__ = [
    "enable", "disable", "enabled", "registry", "tracer", "reset",
    "counter", "gauge", "histogram", "span", "traced", "snapshot",
    "to_prometheus_text", "to_json", "from_json", "render_table",
    "histogram_quantile",
    "Counter", "Gauge", "Histogram", "MetricFamily", "MetricsRegistry",
    "TelemetryError", "Tracer", "NULL_SPAN",
    "LATENCY_BUCKETS_NS", "SIZE_BUCKETS",
    "TelemetrySampler", "TimeSeries", "TimeSeriesPoint", "TimeSeriesStore",
    "DEFAULT_INTERVAL_NS", "DEFAULT_RETENTION",
    "TelemetryHTTPServer", "TelemetryPusher", "PROM_CONTENT_TYPE",
    "render_watch", "sparkline",
    "ProvenanceTracer", "TraceEvent", "FrozenWindow",
    "Profiler", "PhaseReport", "PhaseRow", "StackSampler",
]

_registry = MetricsRegistry()
_tracer = Tracer(_registry)
_enabled = False


def enable() -> None:
    """Turn telemetry on.  Components constructed *after* this call pick
    up instrumentation; already-built components stay dark."""
    global _enabled
    _enabled = True
    _tracer.enabled = True


def disable() -> None:
    global _enabled
    _enabled = False
    _tracer.enabled = False


def enabled() -> bool:
    return _enabled


def registry() -> MetricsRegistry:
    return _registry


def tracer() -> Tracer:
    return _tracer


def reset() -> None:
    """Fresh registry + tracer (tests).  Keeps the enabled flag, drops
    every family, collector and any component-cached handle's backing —
    components built before the reset keep writing into the old,
    now-unreachable registry."""
    global _registry, _tracer
    _registry = MetricsRegistry()
    _tracer = Tracer(_registry)
    _tracer.enabled = _enabled


# -- convenience pass-throughs to the global registry/tracer ---------------


def counter(name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
    return _registry.counter(name, help, labels)


def gauge(name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
    return _registry.gauge(name, help, labels)


def histogram(name: str, help: str = "", labels: Sequence[str] = (),
              buckets: Optional[Sequence[float]] = None) -> MetricFamily:
    return _registry.histogram(name, help, labels, buckets=buckets)


def span(name: str, clock=None):
    return _tracer.span(name, clock)


def traced(name: Optional[str] = None):
    return _tracer.traced(name)


def snapshot(collect: bool = True) -> dict:
    return _registry.snapshot(collect=collect)
