"""Span tracing: nested wall-time + sim-time operation timing.

A span is one timed operation.  Spans nest through a per-tracer stack,
so a pipeline-stage span opened inside an extraction-cycle span records
under the path ``"cp.tick/stage.apply"`` — the same shape PrintQueue's
per-stage breakdowns use.  Each distinct path aggregates into two
registry histograms:

- ``repro_span_wall_ns{span=path}`` — host wall-clock nanoseconds;
- ``repro_span_sim_ns{span=path}``  — simulated nanoseconds, recorded
  only when the span was given a clock (any object with ``.now``).

When the tracer is disabled, :meth:`Tracer.span` hands back one shared
no-op context manager: the hot path pays a single attribute test.
"""

from __future__ import annotations

import functools
import time
from typing import List, Optional

from repro.telemetry.metrics import LATENCY_BUCKETS_NS, MetricsRegistry

__all__ = ["Tracer", "NULL_SPAN"]

WALL_FAMILY = "repro_span_wall_ns"
SIM_FAMILY = "repro_span_sim_ns"
COUNT_FAMILY = "repro_span_total"


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("tracer", "name", "clock", "path", "t0_wall", "t0_sim")

    def __init__(self, tracer: "Tracer", name: str, clock) -> None:
        self.tracer = tracer
        self.name = name
        self.clock = clock
        self.path = ""
        self.t0_wall = 0
        self.t0_sim = 0

    def __enter__(self) -> "_Span":
        stack = self.tracer._stack
        self.path = f"{stack[-1]}/{self.name}" if stack else self.name
        stack.append(self.path)
        if self.clock is not None:
            self.t0_sim = self.clock.now
        self.t0_wall = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        wall = time.perf_counter_ns() - self.t0_wall
        stack = self.tracer._stack
        # A mismatched pop only happens if __exit__ runs twice; guard anyway.
        if stack and stack[-1] == self.path:
            stack.pop()
        sim_delta = self.clock.now - self.t0_sim if self.clock is not None else None
        self.tracer._record(self.path, wall, sim_delta)
        log = self.tracer.span_log
        if log is not None:
            log.append({
                "path": self.path,
                "t0_ns": self.t0_sim if self.clock is not None else None,
                "dur_ns": sim_delta,
                "wall_ns": wall,
            })
        return False


class Tracer:
    """Aggregating tracer bound to a :class:`MetricsRegistry`."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.enabled = False
        # Provenance bridge: when a list is attached here (see
        # repro.telemetry.provenance.enable), each completed span also
        # appends a dict record so spans export onto the Perfetto
        # timeline next to the packet events.
        self.span_log: Optional[List[dict]] = None
        self._stack: List[str] = []
        self._wall = registry.histogram(
            WALL_FAMILY, "wall-clock time per traced operation",
            labels=("span",), buckets=LATENCY_BUCKETS_NS)
        self._sim = registry.histogram(
            SIM_FAMILY, "simulated time per traced operation",
            labels=("span",), buckets=LATENCY_BUCKETS_NS)
        self._count = registry.counter(
            COUNT_FAMILY, "completed traced operations", labels=("span",))

    def span(self, name: str, clock=None):
        """Context manager timing one operation.

        ``clock`` is anything with a ``.now`` integer (a
        :class:`~repro.netsim.engine.Simulator`) — when given, the span
        also records elapsed simulated time.
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, clock)

    def traced(self, name: Optional[str] = None):
        """Decorator form: ``@tracer.traced("cp.tick")``."""

        def deco(fn):
            label = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return fn(*args, **kwargs)
                with _Span(self, label, None):
                    return fn(*args, **kwargs)

            return wrapper

        return deco

    def _record(self, path: str, wall_ns: int, sim_ns: Optional[int]) -> None:
        self._wall.labels(path).observe(wall_ns)
        self._count.labels(path).inc()
        if sim_ns is not None:
            self._sim.labels(path).observe(sim_ns)

    # -- introspection (tests) --------------------------------------------

    def depth(self) -> int:
        return len(self._stack)
