"""Live export: scrape endpoint + archive push.

Two ways out for the flight recorder's data while a run is in flight:

- :class:`TelemetryHTTPServer` — a background-thread HTTP server with a
  Prometheus-exposition ``/metrics`` scrape endpoint (plus ``/series``
  for the ring buffers and ``/healthz``), so an external Prometheus can
  scrape the instrument mid-run exactly as it would scrape a
  node-exporter;
- :class:`TelemetryPusher` — a sampler observer that wraps each retained
  sample as a ``repro_telemetry`` event and pushes it through a Logstash
  sink (normally :meth:`~repro.perfsonar.archiver.Archiver.sink`), so
  the instrument's own health lands in the OpenSearch-like archive next
  to the Report_v1 documents it produces.

The server reads plain dicts/floats under the GIL; the simulation is
single-threaded, so a scrape between events always observes a complete
snapshot.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, List, Optional
from urllib.parse import parse_qs, urlsplit

from repro.telemetry.export import to_json, to_prometheus_text
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeseries import TimeSeriesStore

__all__ = ["TelemetryHTTPServer", "TelemetryPusher", "PROM_CONTENT_TYPE"]

log = logging.getLogger("repro.telemetry.serve")

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry/1.0"

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        owner: "TelemetryHTTPServer" = self.server.owner  # type: ignore[attr-defined]
        if owner.closing:
            # A request racing shutdown must not hit a half-torn-down
            # owner; tell the scraper to come back later.
            self._reply(503, "text/plain", "shutting down\n")
            return
        try:
            parts = urlsplit(self.path)
            query = parse_qs(parts.query, strict_parsing=bool(parts.query))
        except ValueError:
            self._reply(400, "text/plain", "malformed query string\n")
            return
        path = parts.path
        if path == "/metrics":
            body = to_prometheus_text(owner.snapshot())
            self._reply(200, PROM_CONTENT_TYPE, body)
        elif path == "/metrics.json":
            self._reply(200, "application/json", to_json(owner.snapshot()))
        elif path == "/series":
            store = owner.store
            if store is None:
                self._reply(404, "text/plain", "no time-series store attached\n")
                return
            since = 0
            if "since" in query:
                raw = query["since"][-1]
                try:
                    since = int(raw)
                except ValueError:
                    self._reply(400, "text/plain",
                                f"since must be an integer, got {raw!r}\n")
                    return
                if since < 0:
                    self._reply(400, "text/plain",
                                "since must be >= 0 (nanoseconds)\n")
                    return
            self._reply(200, "application/json",
                        json.dumps(store.dump(since=since), sort_keys=True))
        elif path == "/healthz":
            self._reply(200, "text/plain", "ok\n")
        else:
            self._reply(404, "text/plain",
                        "try /metrics, /metrics.json, /series or /healthz\n")

    def _reply(self, status: int, ctype: str, body: str) -> None:
        data = body.encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        except OSError:
            # Client hung up mid-reply (or the socket died during
            # shutdown) — nothing useful to do from the handler thread.
            log.debug("client disconnected before reply completed")

    def log_message(self, fmt: str, *args) -> None:
        log.debug("scrape %s", fmt % args)


class TelemetryHTTPServer:
    """Background scrape server over a registry (and optionally a store).

    ``port=0`` (the default) binds an ephemeral port; :meth:`start`
    returns ``(host, port)`` and :attr:`url` gives the base address.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 store: Optional[TimeSeriesStore] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        # None → the process-global registry, resolved per scrape so a
        # telemetry.reset() can't leave the server bound to a dead registry.
        self._registry = registry
        self.store = store
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        # Set while close() tears the server down: handler threads that
        # already accepted a connection answer 503 instead of racing the
        # teardown and raising.
        self.closing = False

    def snapshot(self) -> dict:
        if self._registry is not None:
            return self._registry.snapshot()
        from repro import telemetry
        return telemetry.snapshot()

    def start(self) -> tuple:
        if self._httpd is not None:
            return self._httpd.server_address
        self.closing = False
        try:
            httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        except OSError as exc:
            # EADDRINUSE/EACCES on the requested port: a stale scraper or
            # another run already holds it.  Fall back to an ephemeral
            # port rather than failing the whole run over an export-only
            # endpoint; the chosen port is logged and returned.
            if self.port == 0:
                raise
            log.warning(
                "could not bind telemetry scrape endpoint to %s:%d (%s); "
                "retrying on an ephemeral port", self.host, self.port, exc)
            httpd = ThreadingHTTPServer((self.host, 0), _Handler)
        httpd.daemon_threads = True
        httpd.owner = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="repro-telemetry-scrape", daemon=True)
        self._thread.start()
        log.info("telemetry scrape endpoint on %s", self.url)
        return httpd.server_address

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self.closing = True
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TelemetryPusher:
    """Sampler observer → ``repro_telemetry`` events into a report sink.

    Each retained sample becomes one event shaped like the control
    plane's Report_v1 documents (``type`` routes it to its own index in
    the OpenSearch output plugin), carrying raw value, delta and rate so
    dashboards can plot the instrument without a PromQL layer::

        sampler.add_observer(TelemetryPusher(archiver.sink))

    ``include`` optionally filters by metric name (callable → bool);
    use it to keep archive volume down on huge registries.
    """

    EVENT_TYPE = "repro_telemetry"

    def __init__(self, sink: Callable[[dict], None],
                 source: str = "repro-flight-recorder",
                 include: Optional[Callable[[str], bool]] = None) -> None:
        self.sink = sink
        self.source = source
        self.include = include
        self.events_pushed = 0

    def __call__(self, t_ns: int, records: List[dict]) -> None:
        for rec in records:
            if self.include is not None and not self.include(rec["metric"]):
                continue
            self.sink({
                "type": self.EVENT_TYPE,
                "@timestamp": t_ns / 1e9,
                "time_ns": t_ns,
                "source": self.source,
                "metric": rec["metric"],
                "labels": rec["labels"],
                "kind": rec["kind"],
                "value": rec["value"],
                "delta": rec["delta"],
                "rate_per_s": rec["rate"],
            })
            self.events_pushed += 1
