"""Optional data-plane rate alerting via trTCM meters.

The control plane's throughput alerts (a_N) observe at t_N granularity;
a meter in the pipeline classifies *every packet* at line rate, so a flow
exceeding its committed/peak rates is flagged within packets, not
sampling intervals — the same argument §4.2 makes for microbursts,
applied to rate policing.  Disabled by default
(``MonitorConfig.rate_meter_enabled``); rates are fractions of the
monitored bottleneck.
"""

from __future__ import annotations

from repro.p4.externs import Digest
from repro.p4.meters import MeterArray, MeterColor
from repro.p4.pipeline import PipelineStage, StandardMetadata
from repro.p4.parser import ParsedHeaders
from repro.p4.registers import RegisterArray
from repro.p4.runtime import P4Program
from repro.core.config import MonitorConfig
from repro.core.flow_table import PORT_INGRESS_TAP


class RateMeterStage(PipelineStage):
    name = "rate_meter"

    def __init__(self, program: P4Program, config: MonitorConfig) -> None:
        self.config = config
        self.mask = config.flow_slots - 1
        cir = max(1, int(config.rate_meter_cir_fraction * config.bottleneck_rate_bps))
        pir = max(cir, int(config.rate_meter_pir_fraction * config.bottleneck_rate_bps))
        self.meter = MeterArray(
            "flow_meter", config.flow_slots,
            cir_bps=cir, pir_bps=pir,
            cbs_bytes=config.rate_meter_burst_bytes,
            pbs_bytes=2 * config.rate_meter_burst_bytes,
        )
        self.red_count = program.register(
            RegisterArray("meter_red_count", config.flow_slots, 32)
        )
        self.digest = program.digest(Digest("rate_alert"))
        self.alerts_emitted = 0

    def process(self, hdr: ParsedHeaders, meta: StandardMetadata) -> None:
        if meta.ingress_port != PORT_INGRESS_TAP or hdr.payload_len == 0:
            return
        idx = meta.flow_id & self.mask
        color = self.meter.execute(idx, hdr.ip_total_len, meta.ingress_timestamp_ns)
        if color is not MeterColor.RED:
            return
        count = self.red_count.add(idx, 1)
        if count == self.config.rate_meter_red_threshold:
            # Exactly-once per threshold crossing (the register keeps
            # counting; the CP may clear it to re-arm).
            self.alerts_emitted += 1
            self.digest.emit(
                flow_id=meta.flow_id,
                red_packets=count,
                time_ns=meta.ingress_timestamp_ns,
                pir_bps=self.meter.pir_bps,
            )
