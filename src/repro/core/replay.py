"""Offline replay: run the P4 monitor + control plane over a recorded
capture instead of a live TAP.

This is the software-collector deployment mode (the repro calibration
notes call it the "P4Runtime/scapy collector" pattern): capture the
ingress/egress mirror streams to pcap, then analyse them offline with
exactly the same pipeline, producing the same per-flow reports, alerts,
microburst events and termination reports as the live system.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.core.config import MonitorConfig
from repro.core.control_plane import MonitorControlPlane, ReportSink
from repro.core.monitor import P4Monitor
from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet
from repro.netsim.pcap import read_pcap
from repro.netsim.tap import TapDirection

TimedCopy = Tuple[int, Packet, TapDirection]


class OfflineAnalyzer:
    """Feeds recorded mirror copies through a fresh monitor assembly.

    The copies' own timestamps drive a virtual clock, so every
    control-plane interval, alert boost and report timestamp behaves
    exactly as it would have live.
    """

    def __init__(
        self,
        config: Optional[MonitorConfig] = None,
        report_sink: Optional[ReportSink] = None,
    ) -> None:
        self.sim = Simulator()
        self.monitor = P4Monitor(config, sim=self.sim)
        self.control_plane = MonitorControlPlane(
            self.sim, self.monitor, report_sink=report_sink
        )

    def replay(self, copies: Iterable[TimedCopy],
               trailer_ns: int = 1_000_000_000) -> "OfflineAnalyzer":
        """Replay ``(timestamp_ns, packet, direction)`` records in time
        order; the clock then runs ``trailer_ns`` past the last record so
        final extraction intervals fire."""
        ordered = sorted(copies, key=lambda c: c[0])
        if not ordered:
            return self
        self.control_plane.start()
        for ts_ns, pkt, direction in ordered:
            if ts_ns < self.sim.now:
                raise ValueError("capture records must not move backwards")
            self.sim.run_until(ts_ns)
            self.monitor.process_packet(pkt, direction, ts_ns)
        self.sim.run_until(ordered[-1][0] + trailer_ns)
        self.control_plane.stop()
        return self

    def replay_pcap_pair(
        self,
        ingress_path: Union[str, Path],
        egress_path: Union[str, Path],
        trailer_ns: int = 1_000_000_000,
    ) -> "OfflineAnalyzer":
        """Replay the two TAP captures (ingress-side and egress-side)."""
        copies: List[TimedCopy] = [
            (ts, pkt, TapDirection.INGRESS) for ts, pkt in read_pcap(ingress_path)
        ] + [
            (ts, pkt, TapDirection.EGRESS) for ts, pkt in read_pcap(egress_path)
        ]
        return self.replay(copies, trailer_ns=trailer_ns)

    # -- result access -----------------------------------------------------------

    @property
    def flows(self):
        return self.control_plane.flows

    @property
    def microbursts(self):
        return self.control_plane.microbursts

    @property
    def terminations(self):
        return self.control_plane.terminations

    def summary(self) -> str:
        cp = self.control_plane
        lines = [
            f"offline analysis over {self.sim.now / 1e9:.2f}s of capture:",
            f"  flows tracked:        {len(cp.flows)}",
            f"  microbursts:          {len(cp.microbursts)}",
            f"  termination reports:  {len(cp.terminations)}",
            f"  alerts:               {len(cp.alerts.history)}",
        ]
        for report in cp.terminations:
            lines.append(
                f"    flow {report.flow_id:#x}: {report.total_bytes / 1e6:.1f} MB, "
                f"avg {report.avg_throughput_bps / 1e6:.1f} Mbps, "
                f"{report.retransmissions} retx ({report.retransmission_pct:.2f}%)"
            )
        return "\n".join(lines)
