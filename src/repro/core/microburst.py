"""Data-plane microburst detection (§3.3.3, §4.2).

"Because the duration of microbursts can be in the order of tens of
microseconds, the sampling approach might not detect them.  For this,
microburst detection should be fully implemented in the data plane."

The detector watches the per-packet queueing delay produced by the
queue-monitor stage.  A hysteresis pair of thresholds (fractions of the
full-buffer drain time) marks burst start and end; on the falling edge a
digest reports the burst's nanosecond start time, duration, peak delay
and packet count — the report format of §3.3.3.
"""

from __future__ import annotations

from repro.p4.externs import Digest
from repro.p4.pipeline import PipelineStage, StandardMetadata
from repro.p4.parser import ParsedHeaders
from repro.p4.registers import RegisterArray
from repro.p4.runtime import P4Program
from repro.core.config import MonitorConfig
from repro.core.flow_table import PORT_EGRESS_TAP


class MicroburstStage(PipelineStage):
    name = "microburst"

    def __init__(self, program: P4Program, config: MonitorConfig) -> None:
        self.config = config
        max_delay = config.max_queue_delay_ns()
        self.on_threshold_ns = int(config.microburst_on_fraction * max_delay)
        self.off_threshold_ns = int(config.microburst_off_fraction * max_delay)
        ts_bits = config.timestamp_bits

        # One detector instance per monitored egress queue, registers
        # sized by port count as a per-port P4 register would be.
        ports = config.monitored_ports
        self.ports = ports
        self.state = program.register(RegisterArray("mb_state", ports, 8))
        self.start = program.register(RegisterArray("mb_start", ports, ts_bits))
        self.peak = program.register(RegisterArray("mb_peak", ports, ts_bits))
        self.pkt_count = program.register(RegisterArray("mb_pkts", ports, 32))
        self.digest = program.digest(Digest("microburst"))

        self.bursts_detected = 0

    def process(self, hdr: ParsedHeaders, meta: StandardMetadata) -> None:
        if meta.ingress_port != PORT_EGRESS_TAP or meta.queue_delay_ns < 0:
            return
        delay = meta.queue_delay_ns
        now = meta.ingress_timestamp_ns
        port = meta.egress_port_id % self.ports
        in_burst = self.state.read(port)
        if not in_burst:
            if delay >= self.on_threshold_ns:
                # Burst start: the rise began when this packet entered the
                # queue, i.e. ``delay`` nanoseconds ago.
                self.state.write(port, 1)
                self.start.write(port, max(0, now - delay))
                self.peak.write(port, delay)
                self.pkt_count.write(port, 1)
            return
        self.peak.maximum(port, delay)
        self.pkt_count.add(port, 1)
        if delay <= self.off_threshold_ns:
            self.state.write(port, 0)
            start = self.start.read(port)
            self.bursts_detected += 1
            self.digest.emit(
                start_ns=start,
                duration_ns=max(0, now - start),
                peak_queue_delay_ns=self.peak.read(port),
                packets=self.pkt_count.read(port),
                port_id=port,
            )

    # -- control-plane visibility into an in-progress burst -----------------------

    def current_burst(self, now_ns: int, port: int = 0):
        """(start_ns, ongoing duration, peak) if a burst is in progress
        on the given tapped queue."""
        if not self.state.read(port):
            return None
        start = self.start.read(port)
        return start, max(0, now_ns - start), self.peak.read(port)
