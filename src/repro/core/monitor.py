"""The assembled data-plane program (Fig. 4's 'data plane' component).

:class:`P4Monitor` wires the five stages into a single pipeline in the
order their metadata dependencies require (flow IDs → Algorithm 1 →
flight size → queue-delay pairing → microburst), registers every
register/digest/sketch with a :class:`~repro.p4.runtime.P4Program`, and
exposes :meth:`receive_copy` as the TAP sink.

Ingress-TAP copies drive the per-flow accounting; egress-TAP copies
drive the queue/microburst path — both traverse the same pipeline and
each stage dispatches on ``standard_metadata.ingress_port`` exactly as
the P4 source would.
"""

from __future__ import annotations

from typing import Optional, Union

from repro import telemetry
from repro.netsim.engine import Simulator
from repro.resilience import faults
from repro.telemetry import profiling, provenance
from repro.netsim.packet import Packet
from repro.netsim.tap import MirrorCopy, TapDirection
from repro.p4.pipeline import P4Pipeline, StandardMetadata
from repro.p4.runtime import P4Program, P4RuntimeClient
from repro.core.config import MonitorConfig
from repro.core.flow_table import PORT_EGRESS_TAP, PORT_INGRESS_TAP, FlowTableStage
from repro.core.limiter import FlightSizeStage
from repro.core.microburst import MicroburstStage
from repro.core.queue_monitor import QueueMonitorStage
from repro.core.rtt import RttLossStage


class P4Monitor:
    """The passive measurement switch."""

    def __init__(self, config: Optional[MonitorConfig] = None,
                 sim: Optional[Simulator] = None) -> None:
        self.config = config or MonitorConfig()
        self.config.validate()
        self.sim = sim
        self.program = P4Program("perfsonar_monitor")
        self.pipeline = P4Pipeline("monitor")

        self.flow_table = FlowTableStage(self.program, self.config)
        self.rtt_loss = RttLossStage(self.program, self.config)
        self.flight = FlightSizeStage(self.program, self.config)
        self.queue = QueueMonitorStage(self.program, self.config)
        self.microburst = MicroburstStage(self.program, self.config)
        self.rate_meter = None
        if self.config.rate_meter_enabled:
            from repro.core.rate_meter import RateMeterStage
            self.rate_meter = RateMeterStage(self.program, self.config)

        for stage in (self.flow_table, self.rtt_loss, self.flight):
            self.pipeline.add_ingress(stage)
        if self.rate_meter is not None:
            self.pipeline.add_ingress(self.rate_meter)
        for stage in (self.queue, self.microburst):
            self.pipeline.add_egress(stage)

        self.copies_ingress = 0
        self.copies_egress = 0
        if telemetry.enabled():
            self._register_telemetry()
        _prof = profiling.profiler()
        if _prof is not None:
            self._register_profiler_sources(_prof)

        # Batched hot path (construction-time twin binding, like every
        # instrumentation subsystem): engaged only when no per-packet
        # hook demands scalar dispatch.  ``batch_buffer`` doubles as the
        # engagement signal the TAP's fast mirror path keys on.
        self.kernel = None
        self.batch_buffer = None
        if (sim is not None
                and self.config.batched_path
                and self.rate_meter is None
                and not telemetry.enabled()
                and _prof is None
                and provenance.tracer() is None
                and faults.injector() is None):
            from repro.core.batch import BatchKernel
            self.kernel = BatchKernel(self)
            self.batch_buffer = self.kernel.buf
            self.receive_copy = self._receive_copy_batched
            sim.add_flush_hook(self.flush)

    def _register_profiler_sources(self, prof) -> None:
        """Op-count sources for the PhaseReport, read lazily at report
        time — the register/sketch hot paths keep their plain-int
        tallies untouched (same pull pattern as the telemetry
        collector above)."""
        prog = self.program
        prof.add_source("p4.tap_copies",
                        lambda mon=self: mon.copies_ingress + mon.copies_egress)
        prof.add_source("p4.register_ops",
                        lambda p=prog: sum(a.ops for a in p.registers.values()))
        prof.add_source("p4.sketch_ops",
                        lambda p=prog: sum(c.updates + c.queries
                                           for c in p.sketches.values()))
        prof.add_source("p4.digest_msgs",
                        lambda p=prog: sum(d.emitted + d.dropped
                                           for d in p.digests.values()))

    def _register_telemetry(self) -> None:
        """Pull-style collection: hot paths keep their plain-int tallies
        (TAP copies, register/sketch ops, digest emissions); a snapshot
        copies them into gauges."""
        reg = telemetry.registry()
        copies = reg.gauge("repro_p4_tap_copies",
                           "TAP mirror copies received by the monitor",
                           labels=("direction",))
        register_ops = reg.gauge("repro_p4_register_ops",
                                 "data-plane register ALU operations",
                                 labels=("register",))
        sketch_ops = reg.gauge("repro_p4_sketch_ops",
                               "count-min sketch operations",
                               labels=("sketch", "op"))
        digests = reg.gauge("repro_p4_digests",
                            "digest messages emitted/dropped by the data plane",
                            labels=("digest", "outcome"))

        def collect(_reg, mon=self) -> None:
            copies.labels("ingress").set(mon.copies_ingress)
            copies.labels("egress").set(mon.copies_egress)
            for name, array in mon.program.registers.items():
                register_ops.labels(name).set(array.ops)
            for name, cms in mon.program.sketches.items():
                sketch_ops.labels(name, "update").set(cms.updates)
                sketch_ops.labels(name, "query").set(cms.queries)
            for name, digest in mon.program.digests.items():
                digests.labels(name, "emitted").set(digest.emitted)
                digests.labels(name, "dropped").set(digest.dropped)

        reg.add_collector(collect)

    # -- TAP sink -------------------------------------------------------------

    def receive_copy(self, copy: MirrorCopy) -> None:
        """Sink signature expected by
        :meth:`repro.netsim.topology.ScienceDMZTopology.attach_tap`."""
        if copy.direction is TapDirection.INGRESS:
            port = PORT_INGRESS_TAP
            self.copies_ingress += 1
        else:
            port = PORT_EGRESS_TAP
            self.copies_egress += 1
        meta = StandardMetadata(
            ingress_port=port,
            ingress_timestamp_ns=copy.timestamp_ns,
            egress_port_id=copy.egress_port_id,
        )
        self.pipeline.process(copy.pkt, meta)

    def _receive_copy_batched(self, copy: MirrorCopy) -> None:
        """Batched twin of :meth:`receive_copy`: defer pipeline work to
        the next flush boundary.  ECN is captured now — downstream queues
        CE-mark the shared ``Packet`` after the mirror point."""
        pkt = copy.pkt
        if copy.direction is TapDirection.INGRESS:
            self.copies_ingress += 1
            self.batch_buffer.append((pkt, PORT_INGRESS_TAP, copy.timestamp_ns,
                                      0, pkt.ecn))
        else:
            self.copies_egress += 1
            self.batch_buffer.append((pkt, PORT_EGRESS_TAP, copy.timestamp_ns,
                                      copy.egress_port_id, pkt.ecn))
        if len(self.batch_buffer) >= 8192:
            self.kernel.flush()

    def flush(self) -> None:
        """Drain any batched copies through the kernel (no-op when the
        scalar path is bound or the buffer is empty)."""
        if self.kernel is not None and self.batch_buffer:
            self.kernel.flush()

    def process_packet(
        self,
        packet: Union[Packet, bytes],
        direction: TapDirection,
        timestamp_ns: int,
        egress_port_id: int = 0,
    ) -> StandardMetadata:
        """Direct injection (tests and trace replay).  Returns the packet's
        metadata so callers can inspect flow IDs / queue delay."""
        if self.kernel is not None and self.batch_buffer:
            self.kernel.flush()  # keep scalar injection ordered after batched copies
        port = PORT_INGRESS_TAP if direction is TapDirection.INGRESS else PORT_EGRESS_TAP
        meta = StandardMetadata(ingress_port=port, ingress_timestamp_ns=timestamp_ns,
                                egress_port_id=egress_port_id)
        self.pipeline.process(packet, meta)
        return meta

    # -- control-plane attachment ---------------------------------------------

    def runtime(self) -> P4RuntimeClient:
        return P4RuntimeClient(self.program)
