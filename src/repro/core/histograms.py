"""Control-plane histogram extraction (distribution reports).

Companion to the :class:`repro.p4.histogram.HistogramRegister` externs
the data plane maintains on the eACK RTT match path and the TAP-pair
queue-delay match path.  At each histogram tick the extractor flips the
banks, folds the per-window deltas into cumulative per-row counts,
derives bucket-upper-bound p50/p90/p99/p99.9 and ships full
distributions to the archiver as ``repro-histogram-v1`` documents —
per active flow (RTT), per monitored port (queue depth) and the
all-flow merge.

The all-flow RTT merge also drives change-point detection in the spirit
of the INT event-detection line of work: consecutive windows that both
hold at least ``histogram_min_samples`` are compared by total-variation
distance of their normalised bin masses; a shift above
``histogram_shift_threshold`` raises an ``rtt_distribution`` alert and
fires the provenance ``alert`` trigger, freezing the fine-grained trace
window around the moment the distribution moved.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.netsim.units import seconds
from repro.p4.histogram import bin_quantile
from repro.core.reports import Alert, HistogramReport

NS_PER_MS = 1_000_000


def quantiles_ms(edges_ns: Sequence[int], counts: Sequence[int]) -> tuple:
    """(p50, p90, p99, p99.9) of one bin row, in milliseconds."""
    return tuple(bin_quantile(edges_ns, counts, q) / NS_PER_MS
                 for q in (0.50, 0.90, 0.99, 0.999))


def tv_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Total-variation distance between two bin rows' normalised masses
    (0 = identical shape, 1 = disjoint support)."""
    sa, sb = float(np.sum(a)), float(np.sum(b))
    if sa <= 0 or sb <= 0:
        return 0.0
    pa = np.asarray(a, dtype=np.float64) / sa
    pb = np.asarray(b, dtype=np.float64) / sb
    return 0.5 * float(np.abs(pa - pb).sum())


def _fmt_ms(ns: float) -> str:
    ms = ns / NS_PER_MS
    if ms >= 100:
        return f"{ms:7.0f}ms"
    if ms >= 1:
        return f"{ms:7.2f}ms"
    return f"{ms * 1000:7.0f}us"


def render_bins(edges_ns: Sequence[int], counts: Sequence[int],
                width: int = 40) -> str:
    """Terminal bar chart of one bin row; empty head/tail bins trimmed."""
    counts = [int(c) for c in counts]
    total = sum(counts)
    if total == 0:
        return "  (no samples)"
    nonzero = [i for i, c in enumerate(counts) if c]
    lo, hi = max(0, nonzero[0] - 1), min(len(counts) - 1, nonzero[-1] + 1)
    peak = max(counts)
    lines = []
    for i in range(lo, hi + 1):
        label = (_fmt_ms(edges_ns[i]) if i < len(edges_ns)
                 else f">{_fmt_ms(edges_ns[-1]).strip()}".rjust(9))
        bar = "#" * max(1 if counts[i] else 0,
                        round(width * counts[i] / peak))
        lines.append(f"  <= {label}  {bar:<{width}}  {counts[i]}")
    return "\n".join(lines)


def render_percentiles(rows: List[dict]) -> str:
    """Percentile table for the CLI view; one dict per scope row with
    keys label/count/p50_ms/p90_ms/p99_ms/p999_ms."""
    header = (f"  {'scope':<22} {'samples':>8} {'p50':>9} {'p90':>9} "
              f"{'p99':>9} {'p99.9':>9}")
    lines = [header, "  " + "-" * (len(header) - 2)]
    for row in rows:
        lines.append(
            f"  {row['label']:<22} {row['count']:>8} "
            f"{row['p50_ms']:>7.2f}ms {row['p90_ms']:>7.2f}ms "
            f"{row['p99_ms']:>7.2f}ms {row['p999_ms']:>7.2f}ms")
    return "\n".join(lines)


class HistogramExtractor:
    """Periodic read-flip extraction bound to one control plane.

    Constructed by :class:`MonitorControlPlane` when the data plane was
    built with ``histograms_enabled``; owns its own timer (the four
    MetricKind ticks are a closed set) but follows the same deferral,
    profiling, telemetry and degraded-interval discipline.
    """

    def __init__(self, cp) -> None:
        self.cp = cp
        config = cp.config
        self.rtt_hist = cp.monitor.rtt_loss.rtt_hist
        self.qdepth_hist = cp.monitor.queue.qdepth_hist
        self.mask = config.flow_slots - 1
        # Cumulative per-row counts: sum of every extracted window, the
        # all-time distribution percentiles are derived from.
        self.rtt_cumulative = np.zeros(
            (self.rtt_hist.size, self.rtt_hist.nbins), dtype=np.uint64)
        self.qdepth_cumulative = np.zeros(
            (self.qdepth_hist.size, self.qdepth_hist.nbins), dtype=np.uint64)
        self._prev_rtt_window: Optional[np.ndarray] = None
        self.ticks = 0
        self.ticks_deferred = 0
        self.catchup_ticks = 0
        self.change_points: List[Alert] = []
        # Latest percentile summaries for the watch header / telemetry
        # mirror: flow_id -> {"count", "p50_ms", "p99_ms", ...}.
        self.latest: Dict[int, dict] = {}
        self.latest_all: Optional[dict] = None
        self._timer = None
        self._deferred_pending = False

    # -- lifecycle -----------------------------------------------------------

    def interval_ns(self) -> int:
        base = seconds(1.0 / self.cp.config.histogram_samples_per_second)
        return max(1, int(base * self.cp.interval_scale))

    def arm(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.cp.sim.after(self.interval_ns(), self._tick)

    def cancel(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- the extraction tick ---------------------------------------------------

    def _tick(self) -> None:
        cp = self.cp
        if not cp._running:
            return
        # Flush batched copies before the bank flip reads the registers.
        cp.monitor.flush()
        if cp._faults is not None and cp._faults.cp_tick_stalled("histograms"):
            self.ticks_deferred += 1
            self._deferred_pending = True
            if cp._tel_cycle_ns is not None:
                cp._tel_deferred.labels("histograms").inc()
            self.arm()
            return
        if self._deferred_pending:
            self._deferred_pending = False
            self.catchup_ticks += 1
            if cp._tel_cycle_ns is not None:
                cp._tel_catchup.labels("histograms").inc()
        prof = cp._prof
        if prof is not None:
            prof.begin("cp.extract/histograms")
        try:
            if cp._tel_cycle_ns is not None:
                with telemetry.span("cp.extract", cp.sim):
                    t0 = time.perf_counter_ns()
                    self._extract()
                    cp._tel_cycle_ns.labels("histograms").observe(
                        time.perf_counter_ns() - t0)
                cp._tel_cycles.labels("histograms").inc()
            else:
                self._extract()
        finally:
            if prof is not None:
                prof.end()
        self.ticks += 1
        # The bank flip was destructive: checkpoint so a crash cannot
        # lose the window that just left the data plane.
        if cp._ckpt is not None:
            cp._ckpt.on_tick(cp)
        self.arm()

    def _extract(self) -> None:
        cp = self.cp
        now = cp.sim.now
        rtt_window = cp.runtime.extract_histogram("rtt_hist")
        qdepth_window = cp.runtime.extract_histogram("qdepth_hist")
        self.rtt_cumulative += rtt_window
        self.qdepth_cumulative += qdepth_window
        edges = self.rtt_hist.edges

        # Per-flow RTT distributions.  Algorithm 1 stores the RTT under
        # the ACK direction's flow ID, so the tracked flow's row is its
        # *reversed* ID's slot (same as the scalar rtt register read).
        for flow in cp._active_flows():
            idx = flow.rev_flow_id & self.mask
            wcount = int(rtt_window[idx].sum())
            counts = self.rtt_cumulative[idx]
            total = int(counts.sum())
            if total == 0:
                continue
            p50, p90, p99, p999 = quantiles_ms(edges, counts)
            self.latest[flow.flow_id] = {
                "count": total, "p50_ms": p50, "p90_ms": p90,
                "p99_ms": p99, "p999_ms": p999,
            }
            if wcount == 0:
                continue  # nothing new this window: summary only, no report
            report = HistogramReport(
                time_ns=now, metric="rtt", scope="flow",
                edges_ns=list(edges), counts=[int(c) for c in counts],
                count=total, p50_ms=p50, p90_ms=p90, p99_ms=p99,
                p999_ms=p999, window_count=wcount,
                flow_id=flow.flow_id, src_ip=flow.src_ip, dst_ip=flow.dst_ip,
            )
            cp.histogram_reports.append(report)
            cp._ship(report)

        # All-flow merge + change-point detection on the window shape.
        merged_window = rtt_window.sum(axis=0)
        merged_total = self.rtt_cumulative.sum(axis=0)
        wcount = int(merged_window.sum())
        total = int(merged_total.sum())
        shift: Optional[float] = None
        min_samples = cp.config.histogram_min_samples
        if wcount >= min_samples:
            if (self._prev_rtt_window is not None
                    and int(self._prev_rtt_window.sum()) >= min_samples):
                shift = tv_distance(self._prev_rtt_window, merged_window)
                if shift > cp.config.histogram_shift_threshold:
                    self._change_point(now, shift)
            self._prev_rtt_window = merged_window
        if total > 0:
            p50, p90, p99, p999 = quantiles_ms(edges, merged_total)
            self.latest_all = {
                "count": total, "p50_ms": p50, "p90_ms": p90,
                "p99_ms": p99, "p999_ms": p999,
            }
            if wcount > 0:
                report = HistogramReport(
                    time_ns=now, metric="rtt", scope="all",
                    edges_ns=list(edges),
                    counts=[int(c) for c in merged_total],
                    count=total, p50_ms=p50, p90_ms=p90, p99_ms=p99,
                    p999_ms=p999, window_count=wcount, shift=shift,
                )
                cp.histogram_reports.append(report)
                cp._ship(report)

        # Per-port queue-depth distributions.
        qedges = self.qdepth_hist.edges
        for port in range(self.qdepth_hist.size):
            wcount = int(qdepth_window[port].sum())
            if wcount == 0:
                continue
            counts = self.qdepth_cumulative[port]
            p50, p90, p99, p999 = quantiles_ms(qedges, counts)
            report = HistogramReport(
                time_ns=now, metric="queue_depth", scope="port",
                edges_ns=list(qedges), counts=[int(c) for c in counts],
                count=int(counts.sum()), p50_ms=p50, p90_ms=p90,
                p99_ms=p99, p999_ms=p999, window_count=wcount,
                port_id=port,
            )
            cp.histogram_reports.append(report)
            cp._ship(report)

    def _change_point(self, now: int, shift: float) -> None:
        alert = Alert(
            time_ns=now, metric="rtt_distribution", flow_id=None,
            value=shift, threshold=self.cp.config.histogram_shift_threshold,
        )
        self.change_points.append(alert)
        if self.cp._trace is not None:
            # Freeze the fine provenance window around the moment the
            # distribution moved (same trigger the threshold alerts use).
            self.cp._trace.fire("alert", now, metric="rtt_distribution",
                                shift=shift)
        self.cp._ship(alert)
        forensics = getattr(self.cp, "forensics", None)
        if forensics is not None:
            # Which flows moved the distribution?  Queue the culprit
            # query over the window that shifted.
            forensics.on_change_point(now, alert)

    # -- surfaces (watch header, flight recorder) ------------------------------

    def watch_line(self) -> Optional[str]:
        """One-line p99-RTT summary for the live watch header."""
        if self.latest_all is None:
            return None
        parts = [f"all {self.latest_all['p99_ms']:.2f}ms"]
        by_count = sorted(self.latest.items(),
                          key=lambda kv: kv[1]["count"], reverse=True)
        for fid, row in by_count[:4]:
            parts.append(f"{fid & 0xFFFFFF:06x} {row['p99_ms']:.2f}ms")
        return "p99 RTT: " + "  |  ".join(parts)

    def telemetry_samples(self, _t_ns: int):
        """Flight-recorder mirror: (name, labels, kind, value) tuples of
        the latest percentile summaries, one series per scope."""
        if self.latest_all is not None:
            for q in ("p50_ms", "p99_ms"):
                yield (f"repro_hist_rtt_{q[:-3]}_ms", {"flow": "all"},
                       "gauge", self.latest_all[q])
        for fid, row in self.latest.items():
            yield ("repro_hist_rtt_p99_ms", {"flow": f"{fid:x}"},
                   "gauge", row["p99_ms"])
