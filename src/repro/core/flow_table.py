"""Flow identification and the 2048-slot per-flow register file (§4).

Every packet gets a ``flow_ID = hash(5-tuple)`` and a ``reversed ID``
(source/destination fields swapped).  Payload-carrying flows are pushed
through a count-min sketch; once a flow's byte estimate crosses the
long-flow threshold it claims the register slot ``flow_ID & (slots-1)``
and the data plane announces it to the control plane with a digest
carrying the flow ID, source/destination addresses and the reversed ID —
exactly the §4 announcement.

Slot collisions (a second long flow hashing into an occupied slot) are
counted and the colliding flow is left untracked, the honest behaviour
of a hash-indexed register file.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.netsim.packet import F_FIN, F_RST, FiveTuple
from repro.p4.externs import Digest
from repro.p4.hashes import crc32_tuple
from repro.p4.pipeline import PipelineStage, StandardMetadata
from repro.p4.parser import ParsedHeaders
from repro.p4.registers import RegisterArray
from repro.p4.sketch import CountMinSketch
from repro.p4.runtime import P4Program
from repro.core.config import MonitorConfig

PORT_INGRESS_TAP = 0
PORT_EGRESS_TAP = 1


class FlowIdEngine:
    """Computes (flow_ID, reversed_ID) pairs; memoised, standing in for a
    line-rate hash unit."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[int, int, int, int, int], Tuple[int, int]] = {}

    def ids(self, hdr: ParsedHeaders) -> Tuple[int, int]:
        key = (hdr.src_ip, hdr.dst_ip, hdr.src_port, hdr.dst_port, hdr.proto)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ft = FiveTuple(*key)
        pair = (crc32_tuple(ft), crc32_tuple(ft.reversed()))
        self._cache[key] = pair
        return pair


class FlowTableStage(PipelineStage):
    """CMS long-flow detection + slot allocation + byte/packet accounting."""

    name = "flow_table"

    def __init__(self, program: P4Program, config: MonitorConfig) -> None:
        self.config = config
        self.slots = config.flow_slots
        self.mask = config.flow_slots - 1
        self.ids = FlowIdEngine()

        self.cms = program.sketch(
            "long_flow_cms",
            CountMinSketch(
                width=config.cms_width,
                depth=config.cms_depth,
                conservative=config.cms_conservative,
            ),
        )
        self.flow_key = program.register(RegisterArray("flow_key", self.slots, 32))
        self.flow_src = program.register(RegisterArray("flow_src", self.slots, 32))
        self.flow_dst = program.register(RegisterArray("flow_dst", self.slots, 32))
        self.flow_sport = program.register(RegisterArray("flow_sport", self.slots, 16))
        self.flow_dport = program.register(RegisterArray("flow_dport", self.slots, 16))
        self.flow_bytes = program.register(RegisterArray("flow_bytes", self.slots, 64))
        self.flow_pkts = program.register(RegisterArray("flow_pkts", self.slots, 64))
        self.flow_start = program.register(
            RegisterArray("flow_start", self.slots, config.timestamp_bits)
        )
        self.flow_last = program.register(
            RegisterArray("flow_last", self.slots, config.timestamp_bits)
        )
        self.flow_fin = program.register(RegisterArray("flow_fin", self.slots, 8))

        self.long_flow_digest = program.digest(Digest("long_flow"))
        self.termination_digest = program.digest(Digest("flow_termination"))

        self.slot_collisions = 0

    # -- data plane --------------------------------------------------------------

    def process(self, hdr: ParsedHeaders, meta: StandardMetadata) -> None:
        fid, rid = self.ids.ids(hdr)
        meta.flow_id = fid
        meta.rev_flow_id = rid
        if meta.ingress_port != PORT_INGRESS_TAP:
            return  # per-flow accounting uses the ingress-TAP copy only

        slot = fid & self.mask
        key = self.flow_key.read(slot)
        if key == fid:
            meta.flow_slot = slot
            meta.is_long_flow = True
        elif key == 0:
            if hdr.payload_len > 0:
                estimate = self.cms.update_tuple(hdr.five_tuple, hdr.payload_len)
                if estimate >= self.config.long_flow_bytes:
                    self._claim(slot, fid, rid, hdr, meta)
        else:
            self.slot_collisions += 1
            return

        if meta.flow_slot >= 0:
            self.flow_bytes.add(slot, hdr.ip_total_len)
            self.flow_pkts.add(slot, 1)
            self.flow_last.write(slot, meta.ingress_timestamp_ns)
            if hdr.flags & (F_FIN | F_RST) and not self.flow_fin.read(slot):
                self._terminate(slot, fid, hdr, meta)

    def _claim(self, slot: int, fid: int, rid: int, hdr: ParsedHeaders,
               meta: StandardMetadata) -> None:
        self.flow_key.write(slot, fid)
        self.flow_src.write(slot, hdr.src_ip)
        self.flow_dst.write(slot, hdr.dst_ip)
        self.flow_sport.write(slot, hdr.src_port)
        self.flow_dport.write(slot, hdr.dst_port)
        self.flow_start.write(slot, meta.ingress_timestamp_ns)
        self.flow_fin.write(slot, 0)
        meta.flow_slot = slot
        meta.is_long_flow = True
        self.long_flow_digest.emit(
            flow_id=fid,
            rev_flow_id=rid,
            slot=slot,
            src_ip=hdr.src_ip,
            dst_ip=hdr.dst_ip,
            src_port=hdr.src_port,
            dst_port=hdr.dst_port,
            first_seen_ns=meta.ingress_timestamp_ns,
        )

    def _terminate(self, slot: int, fid: int, hdr: ParsedHeaders,
                   meta: StandardMetadata) -> None:
        self.flow_fin.write(slot, 1)
        self.termination_digest.emit(
            flow_id=fid,
            slot=slot,
            src_ip=hdr.src_ip,
            dst_ip=hdr.dst_ip,
            src_port=hdr.src_port,
            dst_port=hdr.dst_port,
            start_ns=self.flow_start.read(slot),
            end_ns=meta.ingress_timestamp_ns,
            total_bytes=self.flow_bytes.read(slot),
            total_packets=self.flow_pkts.read(slot),
        )

    # -- control-plane helpers ---------------------------------------------------

    def release_slot(self, slot: int) -> None:
        """Free a slot (control-plane eviction of idle flows)."""
        for reg in (
            self.flow_key, self.flow_src, self.flow_dst, self.flow_sport,
            self.flow_dport, self.flow_bytes, self.flow_pkts,
            self.flow_start, self.flow_last, self.flow_fin,
        ):
            reg.clear(slot)
