"""Algorithm 1: RTT and packet-loss calculation in the data plane (§4.3).

Faithful transcription of the paper's pseudocode (adopted from Chen et
al., "Measuring TCP round-trip time in the data plane"):

- **Data (Seq) packets**: if the sequence number regresses below the
  previously recorded one, count a packet loss (a retransmission
  happened); otherwise record the new sequence number, compute the
  expected ACK ``eACK = seq + total_len - 4*ihl - 4*data_offset``, and
  stash the arrival timestamp under the signature
  ``(reversed_flow_ID, eACK)``.
- **ACK packets**: look up the signature ``(flow_ID, ack_no)``; on a hit
  the RTT is ``now - stashed timestamp`` and is written to
  ``rtt_register[flow_ID]`` (the ACK direction's flow ID, as in the
  paper's pseudocode).

The signature table is hash-indexed and tagged with the full 32-bit
signature hash so that colliding entries are detected rather than
producing bogus RTTs; a cell is consumed (cleared) by the matching ACK.
"""

from __future__ import annotations

import struct

from repro.netsim.packet import F_ACK, F_SYN
from repro.telemetry import provenance
from repro.p4.hashes import crc32_bytes
from repro.p4.histogram import HistogramRegister, make_edges
from repro.p4.pipeline import PipelineStage, StandardMetadata
from repro.p4.parser import ParsedHeaders
from repro.p4.registers import RegisterArray
from repro.p4.runtime import P4Program
from repro.core.config import MonitorConfig
from repro.core.flow_table import PORT_INGRESS_TAP

_SIG_FMT = struct.Struct("!II")


class RttLossStage(PipelineStage):
    name = "rtt_loss"

    def __init__(self, program: P4Program, config: MonitorConfig) -> None:
        self.config = config
        self.mask = config.flow_slots - 1
        self.stash_size = config.eack_table_size
        ts_bits = config.timestamp_bits
        self._ts_mask = (1 << ts_bits) - 1

        self.prev_seq = program.register(RegisterArray("prev_seq", config.flow_slots, 32))
        self.pkt_loss = program.register(RegisterArray("pkt_loss", config.flow_slots, 32))
        self.rtt = program.register(RegisterArray("rtt", config.flow_slots, ts_bits))
        self.rtt_count = program.register(RegisterArray("rtt_count", config.flow_slots, 32))
        self.eack_ts = program.register(RegisterArray("eack_ts", self.stash_size, ts_bits))
        self.eack_sig = program.register(RegisterArray("eack_sig", self.stash_size, 32))

        # Per-flow RTT distribution on the same eACK match path: one bin
        # row per flow slot, paired read/flip banks (construction-time
        # binding; the disabled path costs one ``is not None`` test).
        self.rtt_hist: "HistogramRegister | None" = None
        if config.histograms_enabled:
            self.rtt_hist = program.histogram(HistogramRegister(
                "rtt_hist", config.flow_slots,
                make_edges(config.rtt_hist_scale, config.rtt_hist_min_ns,
                           config.rtt_hist_max_ns, config.rtt_hist_bins),
            ))

        self._trace = provenance.tracer()
        self.rtt_matches = 0
        self.rtt_misses = 0      # ACK arrived, no stashed signature
        self.rtt_stale = 0       # match older than rtt_max_age_ns, discarded
        self.stash_evictions = 0  # a newer signature overwrote a live cell

    @staticmethod
    def _signature(flow_id: int, ack_no: int) -> int:
        return crc32_bytes(_SIG_FMT.pack(flow_id & 0xFFFFFFFF, ack_no & 0xFFFFFFFF))

    def process(self, hdr: ParsedHeaders, meta: StandardMetadata) -> None:
        if meta.ingress_port != PORT_INGRESS_TAP:
            return
        now = meta.ingress_timestamp_ns & self._ts_mask
        # Packet type from TCP flags + total length, as in Algorithm 1:
        # a packet with payload is a Seq packet; a payload-less ACK is an
        # ACK packet.  SYNs are ignored (handshake RTT is not a data RTT).
        if hdr.payload_len > 0:
            self._process_seq(hdr, meta, now)
        elif hdr.flags & F_ACK and not hdr.flags & F_SYN:
            self._process_ack(hdr, meta, now)

    # -- Seq branch ---------------------------------------------------------------

    def _process_seq(self, hdr: ParsedHeaders, meta: StandardMetadata, now: int) -> None:
        idx = meta.flow_id & self.mask
        prev = self.prev_seq.read(idx)
        seq = hdr.seq
        # 32-bit serial-number comparison (RFC 1982 style) so the check
        # survives sequence wraparound.
        if prev != 0 and ((seq - prev) & 0xFFFFFFFF) >= 0x80000000:
            # Sequence regressed: a retransmission implies a lost packet.
            self.pkt_loss.add(idx, 1)
            if self._trace is not None:
                self._trace.fire("loss-regression", meta.ingress_timestamp_ns,
                                 flow_id=meta.flow_id, seq=seq, prev_seq=prev)
        else:
            self.prev_seq.write(idx, seq)
            eack = hdr.expected_ack
            sig = self._signature(meta.rev_flow_id, eack)
            cell = sig % self.stash_size
            if self.eack_ts.read(cell) != 0:
                self.stash_evictions += 1
            self.eack_ts.write(cell, now if now != 0 else 1)
            self.eack_sig.write(cell, sig)

    # -- ACK branch ---------------------------------------------------------------

    def _process_ack(self, hdr: ParsedHeaders, meta: StandardMetadata, now: int) -> None:
        sig = self._signature(meta.flow_id, hdr.ack)
        cell = sig % self.stash_size
        stored = self.eack_ts.read(cell)
        if stored != 0 and self.eack_sig.read(cell) == sig:
            rtt = (now - stored) & self._ts_mask
            self.eack_ts.write(cell, 0)
            self.eack_sig.write(cell, 0)
            if rtt > self.config.rtt_max_age_ns:
                # Stale stash entry: the original data packet was lost and
                # its sequence range retransmitted, so this delta measures
                # loss-recovery time, not the path RTT.
                self.rtt_stale += 1
                return
            idx = meta.flow_id & self.mask
            self.rtt.write(idx, rtt)
            self.rtt_count.add(idx, 1)
            if self.rtt_hist is not None:
                self.rtt_hist.observe(idx, rtt)
            self.rtt_matches += 1
        else:
            self.rtt_misses += 1
