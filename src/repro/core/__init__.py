"""The paper's contribution: a passive P4 monitor for perfSONAR.

Data-plane side (:class:`~repro.core.monitor.P4Monitor`): a pipeline of
stages over the TAP copies —

- :mod:`repro.core.flow_table` — 5-tuple hashing, count-min-sketch
  long-flow detection, the 2048-slot per-flow register file (§3.3.2, §4);
- :mod:`repro.core.rtt` — Algorithm 1: eACK-based RTT and
  sequence-regression packet-loss counting (§4.3);
- :mod:`repro.core.queue_monitor` — per-packet queueing delay from the
  ingress/egress TAP copy pair (§4.2);
- :mod:`repro.core.microburst` — fully-data-plane microburst detection
  with nanosecond start/duration (§3.3.3);
- :mod:`repro.core.limiter` — flight-size tracking for the
  network-vs-endpoint limitation classifier (§4.4, after Ghasemi et al.).

Control-plane side (:class:`~repro.core.control_plane.MonitorControlPlane`):
periodic register extraction at the configured intervals (t_N, t_P, t_R,
t_Q), alert thresholds with rate boosting (a_N, a_P, a_R, a_Q), derived
metrics (throughput, loss %, queue occupancy, link utilisation, Jain's
fairness), long-flow termination reports, and Report_v1 emission toward
the perfSONAR archiver (§3.2, §5.3).
"""

from repro.core.config import MetricKind, MonitorConfig, MetricConfig
from repro.core.monitor import P4Monitor
from repro.core.control_plane import MonitorControlPlane
from repro.core.reports import (
    Alert,
    AggregateSample,
    FlowSample,
    FlowTerminationReport,
    LimiterVerdict,
    MicroburstEvent,
)
from repro.core.stats import jain_fairness

__all__ = [
    "MetricKind",
    "MonitorConfig",
    "MetricConfig",
    "P4Monitor",
    "MonitorControlPlane",
    "Alert",
    "AggregateSample",
    "FlowSample",
    "FlowTerminationReport",
    "LimiterVerdict",
    "MicroburstEvent",
    "jain_fairness",
]
