"""Control-plane derived statistics (§5.3).

These are the computations that "surpass the data plane's computational
and resource constraints": Jain's fairness index (eq. 1), link
utilisation, and aggregate traffic counters.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def jain_fairness(allocations: Sequence[float]) -> float:
    """Jain's fairness index (paper eq. 1):

    ``F = (sum x_i)^2 / (N * sum x_i^2)``

    Returns 1.0 for an empty or all-zero allocation (vacuously fair),
    otherwise a value in ``(0, 1]`` — 1/N when one flow takes everything,
    1 for a perfectly even split.
    """
    x = np.asarray(list(allocations), dtype=float)
    if x.size == 0:
        return 1.0
    if np.any(x < 0):
        raise ValueError("allocations must be non-negative")
    denom = x.size * float(np.sum(x * x))
    if denom == 0.0:
        return 1.0
    return float(np.sum(x)) ** 2 / denom


def link_utilization(byte_deltas: Iterable[int], interval_ns: int, capacity_bps: int) -> float:
    """Fraction of ``capacity_bps`` consumed by the observed flows over
    ``interval_ns``.  Clamped to [0, 1.5] (transient >1 readings can occur
    when a queue drains — worth seeing, but bounded for sanity)."""
    if interval_ns <= 0:
        raise ValueError("interval must be positive")
    if capacity_bps <= 0:
        raise ValueError("capacity must be positive")
    bits = 8 * sum(byte_deltas)
    util = bits * 1e9 / (interval_ns * capacity_bps)
    return min(util, 1.5)


def coefficient_of_variation(values: Sequence[float]) -> float:
    """CV = std/mean; 0 for constant series, inf-safe (0 mean -> 0)."""
    x = np.asarray(list(values), dtype=float)
    if x.size < 2:
        return 0.0
    mean = float(np.mean(x))
    if mean == 0.0:
        return 0.0
    return float(np.std(x)) / mean


def throughput_bps(byte_delta: int, interval_ns: int) -> float:
    if interval_ns <= 0:
        return 0.0
    return byte_delta * 8 * 1e9 / interval_ns
