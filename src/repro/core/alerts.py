"""Alert threshold tracking (§3.2).

"If one of the alerting thresholds is exceeded, the control plane
notifies the administrator and increases the collection rate to a value
defined by the administrator."

:class:`AlertManager` keeps the active-alert set keyed by
(metric, flow).  A raise emits an :class:`~repro.core.reports.Alert`,
a return below threshold emits the matching cleared event, and
:meth:`metric_boosted` tells the extraction loop whether a metric class
should run at its boosted rate.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.telemetry import provenance
from repro.core.config import MetricKind, MonitorConfig
from repro.core.reports import Alert

AlertSink = Callable[[Alert], None]


class AlertManager:
    def __init__(self, config: MonitorConfig, sink: Optional[AlertSink] = None) -> None:
        self.config = config
        self.sink = sink
        self._active: Dict[Tuple[MetricKind, Optional[int]], Alert] = {}
        self.history: List[Alert] = []
        self._trace = provenance.tracer()
        self._tel_transitions = None
        if telemetry.enabled():
            self._tel_transitions = telemetry.counter(
                "repro_cp_alert_transitions_total",
                "alert raise/clear transitions per metric class",
                labels=("metric", "transition"))

    def check(
        self,
        kind: MetricKind,
        flow_id: Optional[int],
        value: float,
        now_ns: int,
    ) -> Optional[Alert]:
        """Evaluate one observation; returns the Alert if one was raised
        or cleared at this instant, else None."""
        mc = self.config.metric(kind)
        if not mc.alert_enabled or mc.alert_threshold is None:
            return None
        key = (kind, flow_id)
        active = self._active.get(key)
        if value > mc.alert_threshold:
            if active is not None:
                return None  # still alerting; no duplicate notification
            alert = Alert(
                time_ns=now_ns,
                metric=kind.value,
                flow_id=flow_id,
                value=value,
                threshold=mc.alert_threshold,
            )
            self._active[key] = alert
            self._emit(alert)
            return alert
        if active is not None:
            del self._active[key]
            cleared = Alert(
                time_ns=now_ns,
                metric=kind.value,
                flow_id=flow_id,
                value=value,
                threshold=mc.alert_threshold,
                cleared=True,
            )
            self._emit(cleared)
            return cleared
        return None

    def _emit(self, alert: Alert) -> None:
        self.history.append(alert)
        if self._trace is not None and not alert.cleared:
            self._trace.fire("alert", alert.time_ns, metric=alert.metric,
                             flow_id=alert.flow_id, value=alert.value,
                             threshold=alert.threshold)
        if self._tel_transitions is not None:
            self._tel_transitions.labels(
                alert.metric, "cleared" if alert.cleared else "raised").inc()
        if self.sink is not None:
            self.sink(alert)

    def metric_boosted(self, kind: MetricKind) -> bool:
        """True while any flow holds an active alert for this metric —
        the extraction loop then uses the boosted interval."""
        return any(k is kind for k, _ in self._active)

    def drop_flow(self, flow_id: int) -> None:
        """Forget alerts of an evicted flow."""
        for key in [k for k in self._active if k[1] == flow_id]:
            del self._active[key]

    @property
    def active_alerts(self) -> List[Alert]:
        return list(self._active.values())
