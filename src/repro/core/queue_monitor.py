"""Per-packet queueing delay from the TAP pair (§4.2).

The TAPs duplicate each packet twice: once as it enters the core switch
and once as it leaves.  The programmable switch computes the queueing
delay as the time difference between the two copies.  The ingress copy's
timestamp is stashed in a hash-indexed register keyed by a signature of
the packet's invariant header fields; the egress copy looks it up,
producing a per-packet delay that is stored per flow (for control-plane
occupancy sampling) and handed to the microburst stage via packet
metadata.
"""

from __future__ import annotations

import struct

from repro.p4.hashes import crc32_bytes
from repro.p4.histogram import HistogramRegister, make_edges
from repro.p4.pipeline import PipelineStage, StandardMetadata
from repro.p4.parser import ParsedHeaders
from repro.p4.registers import RegisterArray
from repro.p4.runtime import P4Program
from repro.p4.time_windows import TimeWindowRegister
from repro.core.config import MonitorConfig
from repro.core.flow_table import PORT_EGRESS_TAP, PORT_INGRESS_TAP

_PKT_SIG_FMT = struct.Struct("!IIHIIH")


def packet_signature(hdr: ParsedHeaders) -> int:
    """Hash of fields invariant across the switch traversal: addresses,
    IP ID, sequence/ack numbers and total length."""
    return crc32_bytes(
        _PKT_SIG_FMT.pack(
            hdr.src_ip,
            hdr.dst_ip,
            hdr.ip_id,
            hdr.seq,
            hdr.ack,
            hdr.ip_total_len & 0xFFFF,
        )
    )


class QueueMonitorStage(PipelineStage):
    name = "queue_monitor"

    def __init__(self, program: P4Program, config: MonitorConfig) -> None:
        self.config = config
        self.mask = config.flow_slots - 1
        self.stash_size = config.queue_stash_size
        ts_bits = config.timestamp_bits
        self._ts_mask = (1 << ts_bits) - 1

        self.stash_ts = program.register(
            RegisterArray("q_stash_ts", self.stash_size, ts_bits)
        )
        self.stash_sig = program.register(RegisterArray("q_stash_sig", self.stash_size, 32))
        # Latest per-flow queueing delay, read by the control plane at t_Q.
        self.flow_qdelay = program.register(
            RegisterArray("flow_qdelay", config.flow_slots, ts_bits)
        )
        # Worst delay seen since the last control-plane clear (peak-hold).
        self.flow_qdelay_max = program.register(
            RegisterArray("flow_qdelay_max", config.flow_slots, ts_bits)
        )
        # CE-marked packets per flow (ECN extension): the egress copy
        # carries the mark the queue applied, so congestion signalled
        # without drops is visible too.
        self.flow_ce = program.register(
            RegisterArray("flow_ce_marks", config.flow_slots, 32)
        )

        # Per-port queue-depth distribution from the matched TAP pairs:
        # one bin row per monitored egress port, read-flip banks.
        self.ports = config.monitored_ports
        self.qdepth_hist: "HistogramRegister | None" = None
        if config.histograms_enabled:
            qmax = config.qdepth_hist_max_ns
            if qmax is None:
                qmax = config.max_queue_delay_ns()
            self.qdepth_hist = program.histogram(HistogramRegister(
                "qdepth_hist", self.ports,
                make_edges(config.qdepth_hist_scale,
                           config.qdepth_hist_min_ns, qmax,
                           config.qdepth_hist_bins),
            ))

        # Queue-ancestry time windows on the matched TAP-pair path: who
        # occupied the queue, window by window, at every coarsening level.
        self.time_windows: "TimeWindowRegister | None" = None
        if config.forensics_enabled:
            self.time_windows = program.time_window(TimeWindowRegister(
                "time_windows",
                levels=config.forensics_levels,
                cells=config.forensics_cells,
                base_window_ns=config.forensics_base_window_ns,
            ))

        self.pairs_matched = 0
        self.pairs_missed = 0
        self.stash_evictions = 0

    def process(self, hdr: ParsedHeaders, meta: StandardMetadata) -> None:
        sig = packet_signature(hdr)
        cell = sig % self.stash_size
        if meta.ingress_port == PORT_INGRESS_TAP:
            now = meta.ingress_timestamp_ns & self._ts_mask
            if self.stash_ts.read(cell) != 0:
                self.stash_evictions += 1
            self.stash_ts.write(cell, now if now != 0 else 1)
            self.stash_sig.write(cell, sig)
            return
        if meta.ingress_port != PORT_EGRESS_TAP:
            return
        stored = self.stash_ts.read(cell)
        if stored == 0 or self.stash_sig.read(cell) != sig:
            self.pairs_missed += 1
            return
        now = meta.ingress_timestamp_ns & self._ts_mask
        delay = (now - stored) & self._ts_mask
        self.stash_ts.write(cell, 0)
        self.stash_sig.write(cell, 0)
        self.pairs_matched += 1
        meta.queue_delay_ns = delay
        if self.qdepth_hist is not None:
            self.qdepth_hist.observe(meta.egress_port_id % self.ports, delay)
        if self.time_windows is not None:
            self.time_windows.observe(now, meta.flow_id, hdr.ip_total_len, delay)
        idx = meta.flow_id & self.mask
        self.flow_qdelay.write(idx, delay)
        self.flow_qdelay_max.maximum(idx, delay)
        if hdr.ecn == 3:  # CE
            self.flow_ce.add(idx, 1)
