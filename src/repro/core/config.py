"""Monitor configuration: the knobs Fig. 5(a) gives to pSConfig.

Four metric classes, each with an extraction interval (t_N, t_P, t_R,
t_Q), an optional alert threshold (a_N, a_P, a_R, a_Q), and a boosted
sampling rate applied while the threshold is exceeded ("notifies the
administrator and increases the collection rate to a value defined by
the administrator").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Optional

from repro.netsim.units import seconds


class MetricKind(Enum):
    """The four monitored metric classes of §3.2."""

    THROUGHPUT = "throughput"        # t_N / a_N (byte counts)
    PACKET_LOSS = "packet_loss"      # t_P / a_P
    RTT = "rtt"                      # t_R / a_R
    QUEUE_OCCUPANCY = "queue_occupancy"  # t_Q / a_Q

    @classmethod
    def from_cli(cls, text: str) -> "MetricKind":
        """Accept the pSConfig spellings of Fig. 6 (e.g. ``RTT``,
        ``queue_occupancy``)."""
        normalized = text.strip().lower()
        for kind in cls:
            if kind.value == normalized:
                return kind
        raise ValueError(
            f"unknown metric {text!r}; expected one of "
            f"{[k.value for k in cls]}"
        )


@dataclass
class MetricConfig:
    """Per-metric reporting policy."""

    samples_per_second: float = 1.0
    alert_enabled: bool = False
    # Threshold semantics per metric: throughput in bps, loss in percent,
    # RTT in milliseconds, queue occupancy in percent (Fig. 6 line 3 uses
    # ``--threshold 30`` for 30 % occupancy).
    alert_threshold: Optional[float] = None
    # Rate applied while the alert condition holds.
    boosted_samples_per_second: Optional[float] = None

    def interval_ns(self, boosted: bool = False) -> int:
        rate = self.samples_per_second
        if boosted and self.boosted_samples_per_second:
            rate = self.boosted_samples_per_second
        if rate <= 0:
            raise ValueError("samples_per_second must be positive")
        return max(1, seconds(1.0 / rate))


@dataclass
class MonitorConfig:
    """Full configuration of the data plane + control plane."""

    # Data-plane geometry.
    flow_slots: int = 2048          # "the data plane can track 2048 active flows"
    eack_table_size: int = 65536    # eACK signature/timestamp table (§4.3)
    queue_stash_size: int = 65536   # ingress-copy timestamp stash (§4.2)
    cms_width: int = 4096
    cms_depth: int = 3
    cms_conservative: bool = False
    long_flow_bytes: int = 100_000  # CMS byte threshold for 'long flow'
    timestamp_bits: int = 48        # Tofino-style timestamp width
    # eACK stash entries older than this are stale (their data packet was
    # lost and retransmitted); matching them would report recovery time,
    # not path RTT, so they are discarded (Chen et al. do the same).
    rtt_max_age_ns: int = 1_000_000_000

    # Microburst detector (§3.3.3): queue-delay hysteresis thresholds as a
    # fraction of the maximum (full-buffer) queueing delay.  One detector
    # instance per tapped egress queue.
    monitored_ports: int = 8
    microburst_on_fraction: float = 0.5
    microburst_off_fraction: float = 0.25

    # Reference parameters of the monitored bottleneck, needed to convert
    # queueing delay into occupancy (§4.2: occupancy = delay / buffer size).
    bottleneck_rate_bps: int = 10_000_000_000
    buffer_bytes: int = 125_000_000

    # Control-plane policy per metric.
    metrics: Dict[MetricKind, MetricConfig] = field(
        default_factory=lambda: {kind: MetricConfig() for kind in MetricKind}
    )

    # Flows with no byte-count movement for this many throughput intervals
    # are evicted from the flow table by the control plane.
    idle_intervals_before_evict: int = 10

    # Optional data-plane rate alerting (trTCM per flow; see
    # repro.core.rate_meter).  Rates are fractions of the bottleneck.
    rate_meter_enabled: bool = False
    rate_meter_cir_fraction: float = 0.5
    rate_meter_pir_fraction: float = 0.8
    rate_meter_burst_bytes: int = 256 * 1024
    rate_meter_red_threshold: int = 50

    # Limiter classifier (§4.4) window and stability tolerance.
    limiter_window: int = 10
    limiter_stability_cv: float = 0.15
    limiter_rwnd_fraction: float = 0.6
    # Flows that keep less than this in flight (with no losses) are not
    # filling the pipe: the application is the limit even if the sparse
    # per-interval flight samples look noisy.
    limiter_min_flight_bytes: int = 32_768

    def max_queue_delay_ns(self) -> int:
        """Drain time of a full buffer — the 100 % occupancy point."""
        return self.buffer_bytes * 8 * 1_000_000_000 // self.bottleneck_rate_bps

    def metric(self, kind: MetricKind) -> MetricConfig:
        return self.metrics[kind]

    def validate(self) -> None:
        if self.flow_slots <= 0 or self.flow_slots & (self.flow_slots - 1):
            raise ValueError("flow_slots must be a positive power of two")
        if not 0 < self.microburst_off_fraction < self.microburst_on_fraction <= 1.0:
            raise ValueError(
                "need 0 < microburst_off_fraction < microburst_on_fraction <= 1"
            )
        if self.bottleneck_rate_bps <= 0 or self.buffer_bytes <= 0:
            raise ValueError("bottleneck rate and buffer size must be positive")
        for kind, mc in self.metrics.items():
            if mc.samples_per_second <= 0:
                raise ValueError(f"{kind.value}: samples_per_second must be positive")
            if mc.alert_enabled and mc.alert_threshold is None:
                raise ValueError(f"{kind.value}: alert enabled without a threshold")

    def copy(self) -> "MonitorConfig":
        return replace(self, metrics={k: replace(v) for k, v in self.metrics.items()})
