"""Monitor configuration: the knobs Fig. 5(a) gives to pSConfig.

Four metric classes, each with an extraction interval (t_N, t_P, t_R,
t_Q), an optional alert threshold (a_N, a_P, a_R, a_Q), and a boosted
sampling rate applied while the threshold is exceeded ("notifies the
administrator and increases the collection rate to a value defined by
the administrator").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Optional

from repro.netsim.units import seconds


class MetricKind(Enum):
    """The four monitored metric classes of §3.2."""

    THROUGHPUT = "throughput"        # t_N / a_N (byte counts)
    PACKET_LOSS = "packet_loss"      # t_P / a_P
    RTT = "rtt"                      # t_R / a_R
    QUEUE_OCCUPANCY = "queue_occupancy"  # t_Q / a_Q

    @classmethod
    def from_cli(cls, text: str) -> "MetricKind":
        """Accept the pSConfig spellings of Fig. 6 (e.g. ``RTT``,
        ``queue_occupancy``)."""
        normalized = text.strip().lower()
        for kind in cls:
            if kind.value == normalized:
                return kind
        raise ValueError(
            f"unknown metric {text!r}; expected one of "
            f"{[k.value for k in cls]}"
        )


@dataclass
class MetricConfig:
    """Per-metric reporting policy."""

    samples_per_second: float = 1.0
    alert_enabled: bool = False
    # Threshold semantics per metric: throughput in bps, loss in percent,
    # RTT in milliseconds, queue occupancy in percent (Fig. 6 line 3 uses
    # ``--threshold 30`` for 30 % occupancy).
    alert_threshold: Optional[float] = None
    # Rate applied while the alert condition holds.
    boosted_samples_per_second: Optional[float] = None

    def interval_ns(self, boosted: bool = False) -> int:
        rate = self.samples_per_second
        if boosted and self.boosted_samples_per_second:
            rate = self.boosted_samples_per_second
        if rate <= 0:
            raise ValueError("samples_per_second must be positive")
        return max(1, seconds(1.0 / rate))


@dataclass
class MonitorConfig:
    """Full configuration of the data plane + control plane."""

    # Data-plane geometry.
    flow_slots: int = 2048          # "the data plane can track 2048 active flows"
    eack_table_size: int = 65536    # eACK signature/timestamp table (§4.3)
    queue_stash_size: int = 65536   # ingress-copy timestamp stash (§4.2)
    cms_width: int = 4096
    cms_depth: int = 3
    cms_conservative: bool = False
    long_flow_bytes: int = 100_000  # CMS byte threshold for 'long flow'
    timestamp_bits: int = 48        # Tofino-style timestamp width
    # eACK stash entries older than this are stale (their data packet was
    # lost and retransmitted); matching them would report recovery time,
    # not path RTT, so they are discarded (Chen et al. do the same).
    rtt_max_age_ns: int = 1_000_000_000

    # Microburst detector (§3.3.3): queue-delay hysteresis thresholds as a
    # fraction of the maximum (full-buffer) queueing delay.  One detector
    # instance per tapped egress queue.
    monitored_ports: int = 8
    microburst_on_fraction: float = 0.5
    microburst_off_fraction: float = 0.25

    # Reference parameters of the monitored bottleneck, needed to convert
    # queueing delay into occupancy (§4.2: occupancy = delay / buffer size).
    bottleneck_rate_bps: int = 10_000_000_000
    buffer_bytes: int = 125_000_000

    # Data-plane distribution measurement (read-flip histogram externs):
    # per-flow RTT bins on the eACK match path and per-port queue-depth
    # bins on the TAP-pair match path.  48 log bins over 500 us..2 s give
    # a per-bin ratio of ~1.19 — fine enough that the bucket-upper-bound
    # quantile estimate sits inside the declared distribution tolerance.
    histograms_enabled: bool = False
    rtt_hist_bins: int = 48
    rtt_hist_min_ns: int = 500_000
    rtt_hist_max_ns: int = 2_000_000_000
    rtt_hist_scale: str = "log"
    qdepth_hist_bins: int = 32
    qdepth_hist_min_ns: int = 1_000
    # None -> max_queue_delay_ns() (the 100 % occupancy point) at
    # stage-construction time.
    qdepth_hist_max_ns: Optional[int] = None
    qdepth_hist_scale: str = "log"
    # Control-plane histogram-extraction tick rate and change-point
    # policy: windows with at least ``histogram_min_samples`` whose
    # bin-mass (total-variation) shift against the previous window
    # exceeds the threshold raise an alert and freeze provenance.
    histogram_samples_per_second: float = 1.0
    histogram_shift_threshold: float = 0.35
    histogram_min_samples: int = 16

    # Queue forensics (PrintQueue-style time-window registers): k
    # exponentially-coarsening levels of per-window (flow_sig, pkt_count,
    # byte_count, max_qdepth) cells on the queue-monitor egress path,
    # plus the control-plane extractor that indexes them and answers
    # culprit queries when a microburst or rtt_distribution alert fires.
    forensics_enabled: bool = False
    forensics_levels: int = 4
    # 1024 cells x 1 ms covers a full 1 Hz extraction interval at level
    # 0, so windows normally reach the control plane before the ring
    # wraps (evictions only under much faster packet clock skew).
    forensics_cells: int = 1024
    forensics_base_window_ns: int = 1_000_000   # 1 ms finest windows
    forensics_samples_per_second: float = 1.0
    forensics_top_n: int = 5
    # Alert-triggered queries over intervals holding less byte mass than
    # this are suppressed (report only change-significant windows).
    forensics_min_window_bytes: int = 1500

    # Control-plane checkpointing (crash recovery, docs/robustness.md
    # "Crash recovery"): when enabled the CLI installs a
    # repro.resilience.checkpoint.CheckpointManager before building the
    # scenario; the control plane then writes one repro-checkpoint-v1
    # snapshot per destructive extraction (read-flip banks make the
    # un-extracted remainder recoverable by construction).  retain caps
    # on-disk snapshots; min_interval rate-limits captures (0 = every
    # extraction, the lossless default).
    checkpoint_enabled: bool = False
    checkpoint_dir: Optional[str] = None
    checkpoint_retain: int = 4
    checkpoint_min_interval_ms: float = 0.0

    # Control-plane policy per metric.
    metrics: Dict[MetricKind, MetricConfig] = field(
        default_factory=lambda: {kind: MetricConfig() for kind in MetricKind}
    )

    # Flows with no byte-count movement for this many throughput intervals
    # are evicted from the flow table by the control plane.
    idle_intervals_before_evict: int = 10

    # Columnar batched execution of the per-packet hot path (see
    # repro.core.batch).  Only an override: even when True the monitor
    # falls back to scalar dispatch whenever a per-packet hook (tracing,
    # profiling, telemetry, fault injection, the rate meter) needs it.
    # Set False to force the scalar twin, e.g. for differential testing.
    batched_path: bool = True

    # Optional data-plane rate alerting (trTCM per flow; see
    # repro.core.rate_meter).  Rates are fractions of the bottleneck.
    rate_meter_enabled: bool = False
    rate_meter_cir_fraction: float = 0.5
    rate_meter_pir_fraction: float = 0.8
    rate_meter_burst_bytes: int = 256 * 1024
    rate_meter_red_threshold: int = 50

    # Limiter classifier (§4.4) window and stability tolerance.
    limiter_window: int = 10
    limiter_stability_cv: float = 0.15
    limiter_rwnd_fraction: float = 0.6
    # Flows that keep less than this in flight (with no losses) are not
    # filling the pipe: the application is the limit even if the sparse
    # per-interval flight samples look noisy.
    limiter_min_flight_bytes: int = 32_768

    def max_queue_delay_ns(self) -> int:
        """Drain time of a full buffer — the 100 % occupancy point."""
        return self.buffer_bytes * 8 * 1_000_000_000 // self.bottleneck_rate_bps

    def metric(self, kind: MetricKind) -> MetricConfig:
        return self.metrics[kind]

    def validate(self) -> None:
        if self.flow_slots <= 0 or self.flow_slots & (self.flow_slots - 1):
            raise ValueError("flow_slots must be a positive power of two")
        if not 0 < self.microburst_off_fraction < self.microburst_on_fraction <= 1.0:
            raise ValueError(
                "need 0 < microburst_off_fraction < microburst_on_fraction <= 1"
            )
        if self.bottleneck_rate_bps <= 0 or self.buffer_bytes <= 0:
            raise ValueError("bottleneck rate and buffer size must be positive")
        for kind, mc in self.metrics.items():
            if mc.samples_per_second <= 0:
                raise ValueError(f"{kind.value}: samples_per_second must be positive")
            if mc.alert_enabled and mc.alert_threshold is None:
                raise ValueError(f"{kind.value}: alert enabled without a threshold")
        if self.histograms_enabled:
            if self.rtt_hist_bins < 2 or self.qdepth_hist_bins < 2:
                raise ValueError("histogram bins must be >= 2")
            for scale in (self.rtt_hist_scale, self.qdepth_hist_scale):
                if scale not in ("linear", "log"):
                    raise ValueError(
                        f"histogram scale must be linear|log, got {scale!r}"
                    )
            if not 0 < self.rtt_hist_min_ns < self.rtt_hist_max_ns:
                raise ValueError("need 0 < rtt_hist_min_ns < rtt_hist_max_ns")
            qmax = self.qdepth_hist_max_ns
            if qmax is not None and not 0 < self.qdepth_hist_min_ns < qmax:
                raise ValueError("need 0 < qdepth_hist_min_ns < qdepth_hist_max_ns")
            if self.histogram_samples_per_second <= 0:
                raise ValueError("histogram_samples_per_second must be positive")
            if not 0 < self.histogram_shift_threshold <= 1:
                raise ValueError("need 0 < histogram_shift_threshold <= 1")
            if self.histogram_min_samples < 1:
                raise ValueError("histogram_min_samples must be >= 1")
        if self.checkpoint_enabled:
            if self.checkpoint_retain < 1:
                raise ValueError("checkpoint_retain must be >= 1")
            if self.checkpoint_min_interval_ms < 0:
                raise ValueError("checkpoint_min_interval_ms must be >= 0")
        if self.forensics_enabled:
            if self.forensics_levels < 1:
                raise ValueError("forensics_levels must be >= 1")
            if self.forensics_cells <= 0:
                raise ValueError("forensics_cells must be positive")
            if self.forensics_base_window_ns <= 0:
                raise ValueError("forensics_base_window_ns must be positive")
            if self.forensics_samples_per_second <= 0:
                raise ValueError("forensics_samples_per_second must be positive")
            if self.forensics_top_n < 1:
                raise ValueError("forensics_top_n must be >= 1")
            if self.forensics_min_window_bytes < 0:
                raise ValueError("forensics_min_window_bytes must be >= 0")

    def copy(self) -> "MonitorConfig":
        return replace(self, metrics={k: replace(v) for k, v in self.metrics.items()})
