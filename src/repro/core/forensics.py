"""Queue forensics: time-window extraction + culprit attribution.

Companion to the :class:`repro.p4.time_windows.TimeWindowRegister`
extern the queue monitor maintains on the TAP-pair match path.  At each
forensics tick the extractor flips the banks and folds the decoded
windows into a per-interval **queue-ancestry index**: for every
coarsening level, which flow signed each time window and how many
packets/bytes it recorded.  The query engine answers
``culprits(flow, t0, t1)`` from that index — ranked (flow,
bytes-contributed, window-coverage) attributions of who occupied the
queue while flow X suffered.

The loop closes with the existing observability surfaces: a microburst
digest or an ``rtt_distribution`` change-point alert enqueues a pending
query, and the *next* forensics tick (after the banks are freshly
extracted, so the trouble interval's windows are in the index) runs it,
ships a ``repro-forensics-v1`` report to the archiver, fires the
provenance ``alert`` trigger and refreshes the ``watch`` header's
top-culprit line.  Queries over intervals holding less byte mass than
``forensics_min_window_bytes`` are suppressed — report only
change-significant windows, not every register read.

Attribution caveat (the single-slot compromise hardware makes): each
window cell signs its *last writer*, so a window's packet/byte counts
are attributed wholly to the signing flow.  At millisecond base windows
a queue-building flow signs the windows it dominates, which is what the
ranking needs; precision/recall against the ground-truth oracle is
scored in ``tests/validation/test_forensics_attribution.py``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.netsim.packet import int_to_ip
from repro.netsim.units import seconds
from repro.p4.time_windows import decode_windows
from repro.core.reports import ForensicsReport

# Per-window index entry: (flow_sig, pkt_count, byte_count, max_qdepth_ns).
_SIG, _PKTS, _BYTES, _MAXQ = range(4)


class ForensicsExtractor:
    """Periodic time-window extraction + culprit queries, bound to one
    control plane at construction time (the twin-binding pattern: the
    queue monitor either built the extern or the hook is ``None``)."""

    def __init__(self, cp) -> None:
        self.cp = cp
        config = cp.config
        self.tw = cp.monitor.queue.time_windows
        self.levels = self.tw.levels
        self.base_window_ns = self.tw.base_window_ns
        self.top_n = config.forensics_top_n
        self.min_window_bytes = config.forensics_min_window_bytes
        # Queue-ancestry index: per level, window_id -> [sig, pkts,
        # bytes, max_qdepth].  Repeated extractions of the same window
        # (residue + post-flip writes) merge: counts sum, max holds,
        # the signature follows the latest extraction.
        self.index: List[Dict[int, list]] = [dict() for _ in range(self.levels)]
        # Keep an order of magnitude more history than the ring itself
        # holds; beyond that the oldest window ids are dropped.
        self.retain = self.tw.cells * 16
        self.ticks = 0
        self.ticks_deferred = 0
        self.catchup_ticks = 0
        self.extractions = 0
        # Per-level packet/byte mass folded out of the banks so far:
        # together with the live banks' residue and the extern's
        # eviction tallies this conserves against ``tw.ops`` (the
        # crash-recovery invariant docs/robustness.md states).
        self.extracted_pkts = [0] * self.levels
        self.extracted_bytes = [0] * self.levels
        self.queries = 0
        self.suppressed = 0
        self.latest: Optional[ForensicsReport] = None
        self._pending: List[tuple] = []
        self._timer = None
        self._deferred_pending = False

    # -- lifecycle -----------------------------------------------------------

    def interval_ns(self) -> int:
        base = seconds(1.0 / self.cp.config.forensics_samples_per_second)
        return max(1, int(base * self.cp.interval_scale))

    def arm(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.cp.sim.after(self.interval_ns(), self._tick)

    def cancel(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- alert hooks (enqueue; the query runs at the next tick, after a
    # fresh extraction has the trouble interval's windows in the index) ------

    def on_microburst(self, event) -> None:
        """Microburst digest → pending culprit query over the burst."""
        self._pending.append((
            "microburst",
            event.start_ns,
            event.start_ns + max(event.duration_ns, self.base_window_ns),
            None,
            event.port_id,
        ))

    def on_change_point(self, now: int, alert) -> None:
        """rtt_distribution alert → query the shifted window's interval."""
        lookback = (self.cp.histograms.interval_ns()
                    if self.cp.histograms is not None else self.interval_ns())
        self._pending.append(
            ("rtt_distribution", max(0, now - lookback), now, None, None))

    # -- the extraction tick -------------------------------------------------

    def _tick(self) -> None:
        cp = self.cp
        if not cp._running:
            return
        # Flush batched copies before the bank flip reads the registers.
        cp.monitor.flush()
        if cp._faults is not None and cp._faults.cp_tick_stalled("forensics"):
            self.ticks_deferred += 1
            self._deferred_pending = True
            if cp._tel_cycle_ns is not None:
                cp._tel_deferred.labels("forensics").inc()
            self.arm()
            return
        if self._deferred_pending:
            self._deferred_pending = False
            self.catchup_ticks += 1
            if cp._tel_cycle_ns is not None:
                cp._tel_catchup.labels("forensics").inc()
        prof = cp._prof
        if prof is not None:
            prof.begin("cp.extract/forensics")
        try:
            if cp._tel_cycle_ns is not None:
                with telemetry.span("cp.extract", cp.sim):
                    t0 = time.perf_counter_ns()
                    self._extract()
                    self._run_pending()
                    cp._tel_cycle_ns.labels("forensics").observe(
                        time.perf_counter_ns() - t0)
                cp._tel_cycles.labels("forensics").inc()
            else:
                self._extract()
                self._run_pending()
        finally:
            if prof is not None:
                prof.end()
        self.ticks += 1
        # The bank flip was destructive: checkpoint so a crash cannot
        # lose the windows that just left the data plane.
        if cp._ckpt is not None:
            cp._ckpt.on_tick(cp)
        self.arm()

    def _extract(self) -> None:
        self.extractions += 1
        bank = self.cp.runtime.extract_time_windows("time_windows")
        for rec in decode_windows(bank, self.base_window_ns):
            self.extracted_pkts[rec.level] += rec.pkt_count
            self.extracted_bytes[rec.level] += rec.byte_count
            d = self.index[rec.level]
            cur = d.get(rec.window_id)
            if cur is None:
                d[rec.window_id] = [rec.flow_sig, rec.pkt_count,
                                    rec.byte_count, rec.max_qdepth_ns]
            else:
                cur[_SIG] = rec.flow_sig
                cur[_PKTS] += rec.pkt_count
                cur[_BYTES] += rec.byte_count
                if rec.max_qdepth_ns > cur[_MAXQ]:
                    cur[_MAXQ] = rec.max_qdepth_ns
        for d in self.index:
            if len(d) > self.retain:
                for wid in sorted(d)[:len(d) - self.retain]:
                    del d[wid]

    def _run_pending(self) -> None:
        cp = self.cp
        pending, self._pending = self._pending, []
        for trigger, t0, t1, victim, port_id in pending:
            report = self.query(victim, t0, t1, trigger=trigger,
                                port_id=port_id)
            if report is None:
                self.suppressed += 1
                continue
            self.latest = report
            cp.forensics_reports.append(report)
            if cp._trace is not None:
                cp._trace.fire("alert", report.time_ns,
                               metric="queue_forensics", trigger=trigger,
                               culprits=len(report.culprits))
            cp._ship(report)

    # -- the query engine ----------------------------------------------------

    def windows_in(self, t0_ns: int, t1_ns: int,
                   level: int) -> List[Tuple[int, list]]:
        """(window_id, entry) pairs at one level overlapping [t0, t1)."""
        width = self.base_window_ns << level
        lo = t0_ns // width           # first window id that could overlap
        hi = (max(t1_ns, t0_ns + 1) - 1) // width
        d = self.index[level]
        return [(wid, d[wid]) for wid in range(lo, hi + 1) if wid in d]

    def culprits(self, flow: Optional[int], t0_ns: int,
                 t1_ns: int) -> Tuple[int, int, int, List[dict]]:
        """Ranked attributions for [t0, t1): which flows' packets built
        the queue.  Resolves at the finest coarsening level that still
        holds windows for the interval; when ``flow`` is given, that
        victim's own contribution (both directions) is excluded.
        Returns ``(level, windows, total_bytes, ranked)``."""
        self.queries += 1
        excluded = set()
        if flow is not None:
            excluded.add(flow)
            tf = self.cp.flows.get(flow)
            if tf is not None:
                excluded.add(tf.rev_flow_id)
        for level in range(self.levels):
            rows = self.windows_in(t0_ns, t1_ns, level)
            if rows:
                break
        else:
            return 0, 0, 0, []
        total_bytes = sum(entry[_BYTES] for _, entry in rows)
        per_flow: Dict[int, list] = {}
        for _, entry in rows:
            sig = entry[_SIG]
            if sig in excluded:
                continue
            agg = per_flow.get(sig)
            if agg is None:
                per_flow[sig] = [entry[_PKTS], entry[_BYTES], 1, entry[_MAXQ]]
            else:
                agg[0] += entry[_PKTS]
                agg[1] += entry[_BYTES]
                agg[2] += 1
                if entry[_MAXQ] > agg[3]:
                    agg[3] = entry[_MAXQ]
        nwindows = len(rows)
        ranked = []
        for sig, (pkts, nbytes, signed, maxq) in sorted(
                per_flow.items(), key=lambda kv: (-kv[1][1], kv[0])):
            culprit = {
                "flow_id": sig,
                "bytes": nbytes,
                "packets": pkts,
                "windows": signed,
                "coverage": signed / nwindows,
                "share": (nbytes / total_bytes) if total_bytes else 0.0,
                "max_qdepth_ns": maxq,
            }
            culprit.update(self._resolve(sig))
            ranked.append(culprit)
        return level, nwindows, total_bytes, ranked[:self.top_n]

    def query(self, flow: Optional[int], t0_ns: int, t1_ns: int,
              trigger: str = "query",
              port_id: Optional[int] = None) -> Optional[ForensicsReport]:
        """Run one culprit query; ``None`` when the interval holds less
        byte mass than ``forensics_min_window_bytes`` (suppressed)."""
        level, nwindows, total_bytes, ranked = self.culprits(
            flow, t0_ns, t1_ns)
        if nwindows == 0 or total_bytes < self.min_window_bytes or not ranked:
            return None
        return ForensicsReport(
            time_ns=self.cp.sim.now,
            trigger=trigger,
            t0_ns=t0_ns,
            t1_ns=t1_ns,
            level=level,
            window_width_ns=self.base_window_ns << level,
            windows=nwindows,
            total_bytes=total_bytes,
            culprits=ranked,
            victim_flow_id=flow,
            port_id=port_id,
        )

    def _resolve(self, sig: int) -> dict:
        """Endpoint identity of a flow signature, when still tracked.
        Egress copies in the ACK direction carry the reversed flow id,
        so a signature may match a tracked flow's ``rev_flow_id``."""
        tf = self.cp.flows.get(sig)
        if tf is not None:
            return {"source_ip": int_to_ip(tf.src_ip),
                    "destination_ip": int_to_ip(tf.dst_ip),
                    "source_port": tf.src_port,
                    "destination_port": tf.dst_port}
        for tf in self.cp.flows.values():
            if tf.rev_flow_id == sig:
                return {"source_ip": int_to_ip(tf.dst_ip),
                        "destination_ip": int_to_ip(tf.src_ip),
                        "source_port": tf.dst_port,
                        "destination_port": tf.src_port}
        return {}

    # -- surfaces (watch header, CLI) ----------------------------------------

    def watch_line(self) -> Optional[str]:
        """One-line top-culprit summary for the live watch header."""
        report = self.latest
        if report is None or not report.culprits:
            return None
        top = report.culprits[0]
        who = top.get("source_ip")
        label = (f"{who}:{top['source_port']}" if who
                 else f"{top['flow_id'] & 0xFFFFFF:06x}")
        return (f"top culprit: {label}  {top['bytes']} B over "
                f"{top['windows']} window(s)  {top['share'] * 100:.0f}% of "
                f"queue bytes  (trigger: {report.trigger})")


def render_culprits(report: ForensicsReport) -> str:
    """Terminal ranking table for one forensics report."""
    span_ms = (report.t1_ns - report.t0_ns) / 1e6
    lines = [
        f"  trigger {report.trigger}  interval {span_ms:.1f}ms  "
        f"level {report.level} ({report.window_width_ns / 1e6:.1f}ms windows)  "
        f"{report.windows} window(s)  {report.total_bytes} B",
        f"  {'rank':<5} {'flow':<22} {'bytes':>12} {'pkts':>7} "
        f"{'windows':>8} {'coverage':>9} {'share':>7}",
        "  " + "-" * 75,
    ]
    for rank, c in enumerate(report.culprits, start=1):
        who = c.get("source_ip")
        label = (f"{who}:{c['source_port']}" if who
                 else f"{c['flow_id'] & 0xFFFFFF:06x}")
        lines.append(
            f"  {rank:<5} {label:<22} {c['bytes']:>12} {c['packets']:>7} "
            f"{c['windows']:>8} {c['coverage']:>8.0%} {c['share']:>6.0%}")
    return "\n".join(lines)
