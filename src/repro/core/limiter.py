"""Flight-size tracking and the network-vs-endpoint limiter (§4.4).

Data plane: for each tracked flow, maintain the highest transmitted
sequence (from data packets) and the highest acknowledgment plus the
receiver's advertised window (from the reverse-direction ACK stream).
``flight size = highest_seq - highest_ack`` — "the count of transmitted
bytes awaiting acknowledgment".

Control plane (:class:`LimiterClassifier`): per extraction interval,
examine the recent window of (flight size, loss delta) samples, following
Ghasemi et al. (Dapper):

- losses observed while the flight size had been expanding → the
  **network** is the limit;
- flight size stable with no losses → the **endpoint** is the limit;
  sub-classified as *receiver*-limited when the flight pins near the
  advertised window, else *sender*-limited;
- flight still expanding without losses → the flow is *probing* (no
  verdict yet).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Tuple

from repro.netsim.packet import F_ACK, F_SYN
from repro.p4.pipeline import PipelineStage, StandardMetadata
from repro.p4.parser import ParsedHeaders
from repro.p4.registers import RegisterArray
from repro.p4.runtime import P4Program
from repro.core.config import MonitorConfig
from repro.core.flow_table import PORT_INGRESS_TAP
from repro.core.reports import LimiterVerdict
from repro.core.stats import coefficient_of_variation


class FlightSizeStage(PipelineStage):
    name = "flight_size"

    def __init__(self, program: P4Program, config: MonitorConfig) -> None:
        self.mask = config.flow_slots - 1
        slots = config.flow_slots
        self.high_seq = program.register(RegisterArray("flight_high_seq", slots, 32))
        self.high_ack = program.register(RegisterArray("flight_high_ack", slots, 32))
        self.flow_rwnd = program.register(RegisterArray("flow_rwnd", slots, 32))

    def process(self, hdr: ParsedHeaders, meta: StandardMetadata) -> None:
        if meta.ingress_port != PORT_INGRESS_TAP:
            return
        if hdr.payload_len > 0:
            # Data direction: remember the furthest byte put on the wire.
            idx = meta.flow_id & self.mask
            self.high_seq.maximum(idx, (hdr.seq + hdr.payload_len) & 0xFFFFFFFF)
        elif hdr.flags & F_ACK and not hdr.flags & F_SYN:
            # ACK direction: this packet's *reversed* ID is the data flow.
            idx = meta.rev_flow_id & self.mask
            self.high_ack.maximum(idx, hdr.ack)
            self.flow_rwnd.write(idx, hdr.window)

    def flight_bytes(self, flow_id: int) -> int:
        """Current flight size for a (data-direction) flow ID."""
        idx = flow_id & self.mask
        return max(0, self.high_seq.read(idx) - self.high_ack.read(idx))


@dataclass
class _FlowHistory:
    samples: Deque[Tuple[float, int]] = field(default_factory=lambda: deque(maxlen=16))


class LimiterClassifier:
    """Control-plane side: turns per-interval samples into verdicts."""

    def __init__(self, config: MonitorConfig) -> None:
        self.window = config.limiter_window
        self.stability_cv = config.limiter_stability_cv
        self.rwnd_fraction = config.limiter_rwnd_fraction
        self.min_flight_bytes = config.limiter_min_flight_bytes
        self._history: Dict[int, _FlowHistory] = {}

    def observe(self, flow_id: int, flight_bytes: float, loss_delta: int) -> None:
        hist = self._history.setdefault(flow_id, _FlowHistory())
        hist.samples.append((flight_bytes, loss_delta))

    def classify(self, flow_id: int, rwnd_bytes: int) -> Tuple[LimiterVerdict, float, float, int]:
        """Returns (verdict, mean flight, flight CV, loss sum) over the
        recent window."""
        hist = self._history.get(flow_id)
        if hist is None or len(hist.samples) < 2:
            return LimiterVerdict.UNKNOWN, 0.0, 0.0, 0
        recent = list(hist.samples)[-self.window:]
        flights = [s[0] for s in recent]
        losses = sum(s[1] for s in recent)
        mean_flight = sum(flights) / len(flights)
        cv = coefficient_of_variation(flights)

        if losses > 0:
            return LimiterVerdict.NETWORK_LIMITED, mean_flight, cv, losses
        # Flight pinned against the advertised window: the receiver caps
        # the flow regardless of sample jitter.
        if rwnd_bytes > 0 and mean_flight >= self.rwnd_fraction * rwnd_bytes:
            return LimiterVerdict.RECEIVER_LIMITED, mean_flight, cv, losses
        if cv <= self.stability_cv:
            return LimiterVerdict.SENDER_LIMITED, mean_flight, cv, losses
        # A trickle that never fills the pipe (and never loses): the
        # application is the limit even if sparse samples look noisy.
        if mean_flight < self.min_flight_bytes:
            return LimiterVerdict.SENDER_LIMITED, mean_flight, cv, losses
        # Expanding without loss: congestion control is still probing.
        if len(flights) >= 3 and flights[-1] > flights[0]:
            return LimiterVerdict.PROBING, mean_flight, cv, losses
        return LimiterVerdict.UNKNOWN, mean_flight, cv, losses

    def forget(self, flow_id: int) -> None:
        self._history.pop(flow_id, None)
