"""The switch control plane (Fig. 4/5b).

Responsibilities, as the paper assigns them:

- learn flows from the data plane's ``long_flow`` digests;
- extract each metric class from the registers at its configured interval
  (t_N bytes, t_P losses, t_R RTT, t_Q queue occupancy), at the boosted
  rate while an alert is active;
- derive throughput (bits / reporting duration), loss percentage, queue
  occupancy (delay / full-buffer drain time), link utilisation, Jain's
  fairness and active-flow counts (§4.1, §4.2, §5.3);
- run the §4.4 limiter classification over flight-size/loss history;
- turn ``flow_termination`` digests into the detailed long-flow report of
  §3.3.2 and ``microburst`` digests into nanosecond burst events;
- ship every record to the report sink (the perfSONAR archiver pipeline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import telemetry
from repro.telemetry import profiling, provenance
from repro.resilience import checkpoint, faults
from repro.netsim.engine import Event, Simulator
from repro.netsim.units import NS_PER_S
from repro.core.alerts import AlertManager
from repro.core.config import MetricKind, MonitorConfig
from repro.core.forensics import ForensicsExtractor
from repro.core.histograms import HistogramExtractor
from repro.core.limiter import LimiterClassifier
from repro.core.monitor import P4Monitor
from repro.core.reports import (
    AggregateSample,
    Alert,
    FlowSample,
    FlowTerminationReport,
    ForensicsReport,
    HistogramReport,
    LimiterReport,
    LimiterVerdict,
    MicroburstEvent,
)
from repro.core.stats import jain_fairness, link_utilization, throughput_bps

ReportSink = Callable[[object], None]


@dataclass
class TrackedFlow:
    """Control-plane record of one data-plane-announced long flow."""

    flow_id: int
    rev_flow_id: int
    slot: int
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    first_seen_ns: int
    last_bytes: int = 0
    last_pkts: int = 0
    last_loss: int = 0
    last_throughput_bps: float = 0.0
    idle_intervals: int = 0
    terminated: bool = False
    # True only for idle-eviction (the control plane released the register
    # slot, clearing its counters); FIN/RST termination keeps the slot, so
    # register totals stay comparable against ground truth.
    evicted: bool = False
    verdict: LimiterVerdict = LimiterVerdict.UNKNOWN
    last_rtt_ms: Optional[float] = None
    jitter_ms: float = 0.0  # RFC 3550 smoothed inter-sample variation


class MonitorControlPlane:
    """Periodic extraction + processing + report shipping."""

    def __init__(
        self,
        sim: Simulator,
        monitor: P4Monitor,
        config: Optional[MonitorConfig] = None,
        report_sink: Optional[ReportSink] = None,
    ) -> None:
        self.sim = sim
        self.monitor = monitor
        self.config = config or monitor.config
        self.runtime = monitor.runtime()
        self.report_sink = report_sink

        self.flows: Dict[int, TrackedFlow] = {}
        self.alerts = AlertManager(self.config, sink=self._ship)
        self.limiter = LimiterClassifier(self.config)

        # Report archives kept locally (experiments read these directly).
        self.flow_samples: Dict[MetricKind, List[FlowSample]] = {k: [] for k in MetricKind}
        self.jitter_samples: List[FlowSample] = []
        self.aggregate_samples: List[AggregateSample] = []
        self.microbursts: List[MicroburstEvent] = []
        self.terminations: List[FlowTerminationReport] = []
        self.limiter_reports: List[LimiterReport] = []
        self.histogram_reports: List[HistogramReport] = []
        self.forensics_reports: List[ForensicsReport] = []

        self._timers: Dict[MetricKind, Event] = {}
        self._running = False
        self._tick_fns = {
            MetricKind.THROUGHPUT: self._tick_throughput,
            MetricKind.PACKET_LOSS: self._tick_loss,
            MetricKind.RTT: self._tick_rtt,
            MetricKind.QUEUE_OCCUPANCY: self._tick_queue,
        }

        # Resilience state.  ``last_extraction_ns`` is when each metric
        # class actually last ran (rates window over real elapsed time,
        # not the configured interval, so a stalled tick cannot
        # mis-window throughput); deferred ticks consolidate into one
        # bounded catch-up tick.  ``degraded`` collapses per-flow
        # shipping to the aggregate stream and widens intervals by
        # ``interval_scale`` (driven by the delivery circuit breaker).
        self._faults = faults.injector()
        self.last_extraction_ns: Dict[MetricKind, int] = {}
        self.ticks_deferred: Dict[MetricKind, int] = {k: 0 for k in MetricKind}
        self.catchup_ticks: Dict[MetricKind, int] = {k: 0 for k in MetricKind}
        self._deferred_pending: Dict[MetricKind, bool] = {}
        self.degraded = False
        self._interval_scale = 1.0
        self.reports_suppressed = 0

        # Checkpointing (construction-time binding, same contract as the
        # fault injector above): when a CheckpointManager is installed,
        # every destructive step — extraction ticks that flip/clear
        # read-flip banks, digest consumption — ends with an ``on_tick``
        # so the latest checkpoint always covers everything this process
        # has irreversibly taken from the data plane.
        self._ckpt = checkpoint.manager()
        # Set by a checkpoint restore before start(): extraction cursors
        # of the dead incarnation, so the first post-restart tick windows
        # over the true elapsed time (one bounded catch-up window).
        self._resume_cursors: Optional[Dict[MetricKind, int]] = None

        # Digest subscription lives in start()/stop(), not here: while
        # no control plane is subscribed (construction, or crash-to-
        # restart downtime) digests backlog in the data plane and replay
        # into whoever subscribes next.
        self._digest_receivers = (
            ("long_flow", self._on_long_flow),
            ("flow_termination", self._on_termination),
            ("microburst", self._on_microburst),
        )
        self._subscribed = False

        # Provenance: per-flow register extractions resolve the packet
        # that last wrote the slot, and shipped reports inherit that
        # trace id on their way through Logstash to the archive.
        self._trace = provenance.tracer()

        # Distribution extraction (construction-time binding, like every
        # other optional subsystem): present only when the data plane was
        # built with histogram externs.
        self.histograms: Optional[HistogramExtractor] = None
        if monitor.rtt_loss.rtt_hist is not None:
            self.histograms = HistogramExtractor(self)

        # Queue forensics (same construction-time binding): present only
        # when the queue monitor built the time-window extern.
        self.forensics: Optional[ForensicsExtractor] = None
        if monitor.queue.time_windows is not None:
            self.forensics = ForensicsExtractor(self)

        # Profiling: each extraction tick body runs inside a
        # ``cp.extract/<metric>`` phase frame so register-read cost is
        # attributed separately from packet-path work.
        _prof = profiling.profiler()
        self._prof = _prof if (_prof is not None and _prof.phases) else None

        # Telemetry handles are bound once here; when disabled every hook
        # below reduces to an ``is None`` test.
        self._tel_cycle_ns = None
        if telemetry.enabled():
            self._tel_cycle_ns = telemetry.histogram(
                "repro_cp_extraction_ns",
                "wall-clock duration of one extraction cycle, per metric class",
                labels=("metric",))
            self._tel_cycles = telemetry.counter(
                "repro_cp_extraction_cycles_total",
                "extraction cycles run, per metric class", labels=("metric",))
            self._tel_reports = telemetry.counter(
                "repro_cp_reports_total",
                "reports shipped to the sink, by document type",
                labels=("type",))
            reads_gauge = telemetry.gauge(
                "repro_cp_register_reads",
                "runtime API register read calls issued by the control plane")
            telemetry.registry().add_collector(
                lambda _reg, rt=self.runtime: reads_gauge.set(rt.register_reads))
            alerts_gauge = telemetry.gauge(
                "repro_cp_active_alerts",
                "alerts currently held active, per metric class",
                labels=("metric",))
            telemetry.registry().add_collector(
                lambda _reg, cp=self, g=alerts_gauge: cp._collect_alerts(g))
            self._tel_deferred = telemetry.counter(
                "repro_cp_tick_deferred_total",
                "extraction ticks deferred by an injected control-plane "
                "stall, per metric class", labels=("metric",))
            self._tel_catchup = telemetry.counter(
                "repro_cp_tick_catchup_total",
                "consolidated catch-up extraction ticks run after a stall, "
                "per metric class", labels=("metric",))
            self._tel_suppressed = telemetry.counter(
                "repro_cp_reports_suppressed_total",
                "per-flow reports suppressed while degraded, by report type",
                labels=("type",))
            degraded_gauge = telemetry.gauge(
                "repro_cp_degraded",
                "1 while the control plane is in degraded reporting mode")
            telemetry.registry().add_collector(
                lambda _reg, cp=self, g=degraded_gauge: g.set(
                    1 if cp.degraded else 0))

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        resume = self._resume_cursors
        self._resume_cursors = None
        for kind in MetricKind:
            self.last_extraction_ns[kind] = (
                resume[kind] if resume is not None and kind in resume
                else self.sim.now)
            self._arm(kind)
        if self.histograms is not None:
            self.histograms.arm()
        if self.forensics is not None:
            self.forensics.arm()
        # Subscribe last: backlogged digests (e.g. terminations emitted
        # while no control plane was alive) replay synchronously here,
        # against fully-restored state.
        if not self._subscribed:
            self._subscribed = True
            for name, receiver in self._digest_receivers:
                self.runtime.subscribe_digest(name, receiver)

    def stop(self) -> None:
        self._running = False
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        if self.histograms is not None:
            self.histograms.cancel()
        if self.forensics is not None:
            self.forensics.cancel()
        if self._subscribed:
            self._subscribed = False
            for name, receiver in self._digest_receivers:
                self.runtime.unsubscribe_digest(name, receiver)

    def _arm(self, kind: MetricKind) -> None:
        # Cancel-first: set_degraded can re-arm mid-tick, after which the
        # normal end-of-tick re-arm would double the timer.
        existing = self._timers.get(kind)
        if existing is not None:
            existing.cancel()
        boosted = self.alerts.metric_boosted(kind)
        interval = self.config.metric(kind).interval_ns(boosted=boosted)
        interval = int(interval * self._interval_scale)
        self._timers[kind] = self.sim.after(interval, self._tick, kind)

    def _tick(self, kind: MetricKind) -> None:
        if not self._running:
            return
        # Batched data plane: everything mirrored before this tick must
        # be in the registers before we read them.
        self.monitor.flush()
        if self._faults is not None and self._faults.cp_tick_stalled(kind.value):
            # A stalled extractor does not read registers this interval;
            # the deltas accumulate and the next tick that does run is
            # one bounded catch-up windowed over the true elapsed time.
            self.ticks_deferred[kind] += 1
            self._deferred_pending[kind] = True
            if self._tel_cycle_ns is not None:
                self._tel_deferred.labels(kind.value).inc()
            self._arm(kind)
            return
        if self._deferred_pending.pop(kind, False):
            self.catchup_ticks[kind] += 1
            if self._tel_cycle_ns is not None:
                self._tel_catchup.labels(kind.value).inc()
        prof = self._prof
        if prof is not None:
            prof.begin("cp.extract/" + kind.value)
        try:
            if self._tel_cycle_ns is not None:
                with telemetry.span("cp.extract", self.sim):
                    t0 = time.perf_counter_ns()
                    self._tick_fns[kind]()
                    self._tel_cycle_ns.labels(kind.value).observe(
                        time.perf_counter_ns() - t0)
                self._tel_cycles.labels(kind.value).inc()
            else:
                self._tick_fns[kind]()
        finally:
            if prof is not None:
                prof.end()
        self.last_extraction_ns[kind] = self.sim.now
        if self._ckpt is not None:
            self._ckpt.on_tick(self)
        self._arm(kind)

    # -- degraded reporting mode (driven by the delivery circuit breaker) ---------

    @property
    def interval_scale(self) -> float:
        """Multiplier currently applied to every extraction interval."""
        return self._interval_scale

    def set_degraded(self, on: bool, interval_scale: float = 4.0) -> None:
        """Enter/leave degraded reporting: per-flow FlowSample and
        LimiterReport shipping is suppressed (local archives still
        accumulate, and the aggregate stream keeps flowing) and every
        extraction interval is widened by ``interval_scale``."""
        if interval_scale < 1.0:
            raise ValueError("interval_scale must be >= 1")
        scale = interval_scale if on else 1.0
        if on == self.degraded and scale == self._interval_scale:
            return
        self.degraded = on
        self._interval_scale = scale
        if self._running:
            for kind in MetricKind:
                self._arm(kind)
            if self.histograms is not None:
                self.histograms.arm()
            if self.forensics is not None:
                self.forensics.arm()

    # -- runtime reconfiguration (what pSConfig drives, Fig. 5a) ------------------

    def apply_metric_config(
        self,
        kind: MetricKind,
        samples_per_second: Optional[float] = None,
        alert_enabled: Optional[bool] = None,
        alert_threshold: Optional[float] = None,
        boosted_samples_per_second: Optional[float] = None,
    ) -> None:
        mc = self.config.metric(kind)
        if samples_per_second is not None:
            if samples_per_second <= 0:
                raise ValueError("samples_per_second must be positive")
            mc.samples_per_second = samples_per_second
        if alert_enabled is not None:
            mc.alert_enabled = alert_enabled
        if alert_threshold is not None:
            mc.alert_threshold = alert_threshold
        if boosted_samples_per_second is not None:
            mc.boosted_samples_per_second = boosted_samples_per_second
        if self._running and kind in self._timers:
            self._timers[kind].cancel()
            self._arm(kind)

    def _read_traced(self, name: str, index: int, flow_id: int = -1) -> int:
        """Runtime register read that also records the control-plane
        extraction against the packet that last wrote the cell."""
        value = self.runtime.read_register(name, index)
        if self._trace is not None:
            self._trace.control_read(name, index, self.sim.now,
                                     value=value, flow_id=flow_id)
        return value

    # -- digest handlers ------------------------------------------------------------

    def _on_long_flow(self, _name: str, payload: dict) -> None:
        flow = TrackedFlow(
            flow_id=payload["flow_id"],
            rev_flow_id=payload["rev_flow_id"],
            slot=payload["slot"],
            src_ip=payload["src_ip"],
            dst_ip=payload["dst_ip"],
            src_port=payload["src_port"],
            dst_port=payload["dst_port"],
            first_seen_ns=payload["first_seen_ns"],
        )
        self.flows[flow.flow_id] = flow
        # Digest consumption is destructive (the message left the data
        # plane's backlog): checkpoint so a crash cannot unlearn it.
        if self._ckpt is not None:
            self._ckpt.on_tick(self)

    def _on_termination(self, _name: str, payload: dict) -> None:
        fid = payload["flow_id"]
        mask = self.config.flow_slots - 1
        retx = self._read_traced("pkt_loss", fid & mask, flow_id=fid)
        report = FlowTerminationReport(
            flow_id=fid,
            src_ip=payload["src_ip"],
            dst_ip=payload["dst_ip"],
            src_port=payload["src_port"],
            dst_port=payload["dst_port"],
            start_ns=payload["start_ns"],
            end_ns=payload["end_ns"],
            total_packets=payload["total_packets"],
            total_bytes=payload["total_bytes"],
            retransmissions=retx,
        )
        self.terminations.append(report)
        self._ship(report)
        flow = self.flows.get(fid)
        if flow is not None:
            flow.terminated = True
        if self._ckpt is not None:
            self._ckpt.on_tick(self)

    def _on_microburst(self, _name: str, payload: dict) -> None:
        max_delay = self.config.max_queue_delay_ns()
        event = MicroburstEvent(
            start_ns=payload["start_ns"],
            duration_ns=payload["duration_ns"],
            peak_queue_delay_ns=payload["peak_queue_delay_ns"],
            peak_occupancy=payload["peak_queue_delay_ns"] / max_delay if max_delay else 0.0,
            packets=payload["packets"],
            port_id=payload.get("port_id", 0),
        )
        self.microbursts.append(event)
        if self._trace is not None:
            self._trace.fire("microburst", self.sim.now,
                             start_ns=event.start_ns,
                             duration_ns=event.duration_ns,
                             peak_queue_delay_ns=event.peak_queue_delay_ns,
                             packets=event.packets,
                             port_id=event.port_id)
        self._ship(event)
        if self.forensics is not None:
            # Who built this queue?  The culprit query runs at the next
            # forensics tick, once the burst's windows are extracted.
            self.forensics.on_microburst(event)
        if self._ckpt is not None:
            self._ckpt.on_tick(self)

    # -- extraction ticks ----------------------------------------------------------

    def _active_flows(self) -> List[TrackedFlow]:
        return [f for f in self.flows.values() if not f.terminated]

    def _tick_throughput(self) -> None:
        now = self.sim.now
        kind = MetricKind.THROUGHPUT
        interval = self.config.metric(kind).interval_ns(
            boosted=self.alerts.metric_boosted(kind)
        )
        # Window rates over the time that actually elapsed since the
        # last extraction — identical to the configured interval when
        # ticks fire on schedule, but correct across deferred ticks,
        # boosts and degraded-mode interval changes.
        elapsed = now - self.last_extraction_ns.get(kind, now - interval)
        if elapsed <= 0:
            elapsed = interval
        byte_deltas: List[int] = []
        boosted = self.alerts.metric_boosted(kind)
        for flow in self._active_flows():
            total = self._read_traced("flow_bytes", flow.slot,
                                      flow_id=flow.flow_id)
            delta = total - flow.last_bytes
            flow.last_bytes = total
            thr = throughput_bps(delta, elapsed)
            flow.last_throughput_bps = thr
            byte_deltas.append(delta)
            if delta == 0:
                flow.idle_intervals += 1
                if flow.idle_intervals >= self.config.idle_intervals_before_evict:
                    self._evict(flow)
                    continue
            else:
                flow.idle_intervals = 0
            sample = FlowSample(
                time_ns=now,
                metric=kind.value,
                flow_id=flow.flow_id,
                src_ip=flow.src_ip,
                dst_ip=flow.dst_ip,
                src_port=flow.src_port,
                dst_port=flow.dst_port,
                value=thr,
                boosted=boosted,
            )
            self.flow_samples[kind].append(sample)
            self._ship(sample)
            self.alerts.check(kind, flow.flow_id, thr, now)

        active = self._active_flows()
        throughputs = [f.last_throughput_bps for f in active]
        aggregate = AggregateSample(
            time_ns=now,
            link_utilization=link_utilization(
                byte_deltas, elapsed, self.config.bottleneck_rate_bps
            ),
            jain_fairness=jain_fairness(throughputs) if throughputs else 1.0,
            active_flows=len(active),
            total_bytes=sum(self.runtime.read_register("flow_bytes", f.slot) for f in active),
            total_packets=sum(self.runtime.read_register("flow_pkts", f.slot) for f in active),
        )
        self.aggregate_samples.append(aggregate)
        self._ship(aggregate)

    def _tick_loss(self) -> None:
        now = self.sim.now
        kind = MetricKind.PACKET_LOSS
        boosted = self.alerts.metric_boosted(kind)
        mask = self.config.flow_slots - 1
        for flow in self._active_flows():
            losses = self._read_traced("pkt_loss", flow.flow_id & mask,
                                       flow_id=flow.flow_id)
            pkts = self._read_traced("flow_pkts", flow.slot,
                                     flow_id=flow.flow_id)
            loss_delta = losses - flow.last_loss
            flow.last_loss = losses
            pkt_delta = max(1, pkts - flow.last_pkts)
            flow.last_pkts = pkts
            # Clamped: regressions observed before the flow claimed its
            # slot can make the raw ratio exceed 100 %.
            loss_pct = min(100.0, 100.0 * loss_delta / pkt_delta)
            sample = FlowSample(
                time_ns=now,
                metric=kind.value,
                flow_id=flow.flow_id,
                src_ip=flow.src_ip,
                dst_ip=flow.dst_ip,
                src_port=flow.src_port,
                dst_port=flow.dst_port,
                value=loss_pct,
                boosted=boosted,
            )
            self.flow_samples[kind].append(sample)
            self._ship(sample)
            self.alerts.check(kind, flow.flow_id, loss_pct, now)
            self._limiter_step(flow, loss_delta, now)

    def _limiter_step(self, flow: TrackedFlow, loss_delta: int, now: int) -> None:
        flight = self.monitor.flight.flight_bytes(flow.flow_id)
        self.limiter.observe(flow.flow_id, flight, loss_delta)
        rwnd = self._read_traced("flow_rwnd",
                                 flow.flow_id & (self.config.flow_slots - 1),
                                 flow_id=flow.flow_id)
        verdict, mean_flight, cv, losses = self.limiter.classify(flow.flow_id, rwnd)
        flow.verdict = verdict
        report = LimiterReport(
            time_ns=now,
            flow_id=flow.flow_id,
            src_ip=flow.src_ip,
            dst_ip=flow.dst_ip,
            verdict=verdict,
            flight_bytes=mean_flight,
            flight_cv=cv,
            loss_delta=losses,
            rwnd_bytes=rwnd,
        )
        self.limiter_reports.append(report)
        self._ship(report)

    def _tick_rtt(self) -> None:
        now = self.sim.now
        kind = MetricKind.RTT
        boosted = self.alerts.metric_boosted(kind)
        mask = self.config.flow_slots - 1
        for flow in self._active_flows():
            # Algorithm 1 stores the RTT under the ACK direction's flow ID,
            # i.e. the tracked flow's *reversed* ID.
            rtt_ns = self._read_traced("rtt", flow.rev_flow_id & mask,
                                       flow_id=flow.flow_id)
            if rtt_ns == 0:
                continue  # no sample yet
            rtt_ms = rtt_ns / 1e6
            sample = FlowSample(
                time_ns=now,
                metric=kind.value,
                flow_id=flow.flow_id,
                src_ip=flow.src_ip,
                dst_ip=flow.dst_ip,
                src_port=flow.src_port,
                dst_port=flow.dst_port,
                value=rtt_ms,
                boosted=boosted,
            )
            self.flow_samples[kind].append(sample)
            self._ship(sample)
            self.alerts.check(kind, flow.flow_id, rtt_ms, now)
            self._jitter_step(flow, rtt_ms, now, boosted)

    def _jitter_step(self, flow: TrackedFlow, rtt_ms: float, now: int,
                     boosted: bool) -> None:
        """Derived jitter (one of perfSONAR's four headline metrics,
        §2.2): RFC 3550 smoothing of consecutive RTT-sample deltas."""
        if flow.last_rtt_ms is not None:
            delta = abs(rtt_ms - flow.last_rtt_ms)
            flow.jitter_ms += (delta - flow.jitter_ms) / 16.0
            sample = FlowSample(
                time_ns=now,
                metric="jitter",
                flow_id=flow.flow_id,
                src_ip=flow.src_ip,
                dst_ip=flow.dst_ip,
                src_port=flow.src_port,
                dst_port=flow.dst_port,
                value=flow.jitter_ms,
                boosted=boosted,
            )
            self.jitter_samples.append(sample)
            self._ship(sample)
        flow.last_rtt_ms = rtt_ms

    def _tick_queue(self) -> None:
        now = self.sim.now
        kind = MetricKind.QUEUE_OCCUPANCY
        boosted = self.alerts.metric_boosted(kind)
        mask = self.config.flow_slots - 1
        max_delay = self.config.max_queue_delay_ns()
        for flow in self._active_flows():
            idx = flow.flow_id & mask
            # Peak-hold since the previous tick gives the occupancy the
            # sampling interval actually experienced; clear after reading.
            peak = self._read_traced("flow_qdelay_max", idx,
                                     flow_id=flow.flow_id)
            self.runtime.clear_register("flow_qdelay_max", idx)
            occupancy_pct = 100.0 * peak / max_delay if max_delay else 0.0
            sample = FlowSample(
                time_ns=now,
                metric=kind.value,
                flow_id=flow.flow_id,
                src_ip=flow.src_ip,
                dst_ip=flow.dst_ip,
                src_port=flow.src_port,
                dst_port=flow.dst_port,
                value=occupancy_pct,
                boosted=boosted,
            )
            self.flow_samples[kind].append(sample)
            self._ship(sample)
            self.alerts.check(kind, flow.flow_id, occupancy_pct, now)

    # -- helpers -------------------------------------------------------------------

    def _evict(self, flow: TrackedFlow) -> None:
        flow.terminated = True
        flow.evicted = True
        self.monitor.flow_table.release_slot(flow.slot)
        self.alerts.drop_flow(flow.flow_id)
        self.limiter.forget(flow.flow_id)

    def _collect_alerts(self, gauge) -> None:
        counts = {kind.value: 0 for kind in MetricKind}
        for alert in self.alerts.active_alerts:
            counts[alert.metric] = counts.get(alert.metric, 0) + 1
        for metric, n in counts.items():
            gauge.labels(metric).set(n)

    def _ship(self, report: object) -> None:
        if self.degraded and isinstance(report, (FlowSample, LimiterReport)):
            # Degraded mode: per-flow detail collapses to the aggregate
            # stream (what default perfSONAR ships anyway) until the
            # delivery path proves healthy again.
            self.reports_suppressed += 1
            if self._tel_cycle_ns is not None:
                self._tel_suppressed.labels(type(report).__name__).inc()
            return
        if self.report_sink is not None:
            payload = report.to_document() if hasattr(report, "to_document") else report
            if self._tel_cycle_ns is not None:
                kind = payload.get("type", "unknown") if isinstance(payload, dict) \
                    else type(report).__name__
                self._tel_reports.labels(kind).inc()
            if self._trace is not None:
                doc_type = payload.get("type", "unknown") \
                    if isinstance(payload, dict) else type(report).__name__
                # Report context: downstream (Logstash, archiver) events
                # attach to the packet behind the latest extraction.
                self._trace.begin_report(self.sim.now)
                self._trace.report_event("control-plane", "ship", doc_type)
                try:
                    self.report_sink(payload)
                finally:
                    self._trace.end_report()
                return
            self.report_sink(payload)

    # -- convenience queries (used by experiments/examples) ---------------------------

    def throughput_series(self, flow_id: int) -> List[tuple]:
        return [
            (s.time_ns / NS_PER_S, s.value / 1e6)
            for s in self.flow_samples[MetricKind.THROUGHPUT]
            if s.flow_id == flow_id
        ]

    def series(self, kind: MetricKind, flow_id: Optional[int] = None) -> List[tuple]:
        return [
            (s.time_ns / NS_PER_S, s.value)
            for s in self.flow_samples[kind]
            if flow_id is None or s.flow_id == flow_id
        ]

    def metric_values(self, kind: MetricKind, flow_id: int) -> List[float]:
        """All reported values of one metric for one flow, in time order
        (what the differential checker compares against oracle truth)."""
        return [s.value for s in self.flow_samples[kind] if s.flow_id == flow_id]

    def flow_by_tuple(self, src_ip: int, dst_ip: int, src_port: int,
                      dst_port: int) -> Optional[TrackedFlow]:
        """The tracked flow matching a 5-tuple's addressing (protocol is
        implicit: the data plane only announces what it parsed)."""
        for flow in self.flows.values():
            if (flow.src_ip == src_ip and flow.dst_ip == dst_ip
                    and flow.src_port == src_port and flow.dst_port == dst_port):
                return flow
        return None

    def flows_by_dst(self) -> Dict[int, List[TrackedFlow]]:
        """Group flows by destination IP — how Grafana groups the paper's
        dashboards (§5.1)."""
        groups: Dict[int, List[TrackedFlow]] = {}
        for flow in self.flows.values():
            groups.setdefault(flow.dst_ip, []).append(flow)
        return groups
