"""Batched execution of the per-packet P4 hot path.

The scalar pipeline (:class:`repro.p4.pipeline.P4Pipeline`) dispatches
every mirrored copy through parser → five stages the moment the TAP
delivers it.  That is the right shape for tracing, profiling and unit
tests, but it pays Python call dispatch, a ``MirrorCopy`` and a
``StandardMetadata`` allocation, four ``struct.pack`` + ``zlib.crc32``
calls and a dozen bound-method register accesses *per packet*.

:class:`BatchKernel` replaces that with a columnar two-phase replay,
engaged by :class:`~repro.core.monitor.P4Monitor` at construction time
(the same twin pattern every instrumentation subsystem uses) only when
no per-packet hook demands scalar dispatch:

1. **Columnar precompute** — mirrored copies accumulate in a plain list
   of ``(pkt, port, ts, egress_port_id, ecn)`` tuples between control
   plane ticks; at flush time the header fields are pulled into columns
   and every hash the stages need (eACK stash signatures, queue-pair
   packet signatures) is computed as one table-driven CRC32 sweep over a
   numpy byte matrix — 20 array ops for the whole batch instead of two
   ``zlib.crc32`` calls per packet.  Flow IDs and count-min row indices
   are memoised per 5-tuple (they are pure functions of it).
2. **Fused replay** — one Python loop applies the exact scalar
   match/action semantics packet-by-packet (the register dependency
   chains — eACK stash hits, CMS claim thresholds, microburst
   hysteresis — are inherently sequential), but register state lives in
   per-register overlay dicts during the batch and is written back to
   the numpy cell arrays with one fancy-indexed assignment per register
   at the end.  Histogram observations are collected and binned with a
   single ``searchsorted`` + ``np.add.at`` per extern.

Equivalence contract: after any flush boundary the program state
(:meth:`P4Program.state_digest`), the digest streams and the stage
counters are byte-identical to what the scalar path would have produced
for the same copies — pinned by ``tests/validation/
test_batch_equivalence.py`` and the mutation suite.  Flush boundaries
are the top of every control-plane extraction tick, the end of every
``Simulator.run``/``run_until`` drain (engine flush hooks), a direct
``process_packet`` injection, and a buffer cap.

``RegisterArray.ops`` tallies are *not* maintained by the fused replay
(their consumers — telemetry and the profiler — force the scalar path);
stage counters (``rtt_matches``, ``slot_collisions``, ...) and sketch
update counts are exact.

``debug_mutator`` is a test hook: the mutation suite corrupts one lane
of the precomputed columns (a flow-hash collision, a stash timestamp
shift, a suppressed sketch increment) and asserts the differential
checker catches the divergence.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.netsim.packet import PROTO_TCP

__all__ = ["BatchKernel", "crc32_rows"]

_M32 = 0xFFFFFFFF
_M16 = 0xFFFF


def _make_crc32_table() -> np.ndarray:
    """The standard reflected CRC-32 (zlib) table as uint32."""
    table = np.empty(256, dtype=np.uint32)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ 0xEDB88320 if crc & 1 else crc >> 1
        table[byte] = crc
    return table


_CRC32_TABLE = _make_crc32_table()


def crc32_rows(mat: np.ndarray) -> np.ndarray:
    """Row-wise CRC32 of an ``(n, k)`` uint8 matrix.

    Bit-identical to ``zlib.crc32(bytes(row))`` per row; the sweep is
    column-major so the whole batch advances one byte per table lookup.
    """
    crc = np.full(mat.shape[0], _M32, dtype=np.uint32)
    for j in range(mat.shape[1]):
        crc = _CRC32_TABLE[(crc ^ mat[:, j]) & 0xFF] ^ (crc >> 8)
    return crc ^ np.uint32(_M32)


def _be32(values, n: int) -> np.ndarray:
    """(n, 4) big-endian byte view of a 32-bit column."""
    return np.asarray(values, dtype=">u4").view(np.uint8).reshape(n, 4)


def _be16(values, n: int) -> np.ndarray:
    """(n, 2) big-endian byte view of a 16-bit column."""
    return np.asarray(values, dtype=">u2").view(np.uint8).reshape(n, 2)


def _mix32_array(h: np.ndarray) -> np.ndarray:
    """Vectorised murmur3 finaliser, matching ``repro.p4.hashes._mix32``."""
    h = h.astype(np.uint32, copy=True)
    h ^= h >> np.uint32(16)
    h *= np.uint32(0x85EBCA6B)
    h ^= h >> np.uint32(13)
    h *= np.uint32(0xC2B2AE35)
    h ^= h >> np.uint32(16)
    return h


class BatchKernel:
    """Columnar replay engine bound to one :class:`P4Monitor`."""

    def __init__(self, monitor) -> None:
        self.monitor = monitor
        config = monitor.config
        ft = monitor.flow_table
        rtt = monitor.rtt_loss
        flight = monitor.flight
        queue = monitor.queue
        mb = monitor.microburst

        self.buf: list = []
        # Test hook: called with the column dict after precompute, before
        # the fused replay (see the mutation suite).
        self.debug_mutator: Optional[Callable[[dict], None]] = None

        # Geometry / policy scalars.
        self.flow_mask = config.flow_slots - 1
        self.ts_mask = (1 << config.timestamp_bits) - 1
        self.long_flow_bytes = config.long_flow_bytes
        self.rtt_max_age_ns = config.rtt_max_age_ns
        self.eack_stash_size = config.eack_table_size
        self.q_stash_size = config.queue_stash_size
        self.mb_on_ns = mb.on_threshold_ns
        self.mb_off_ns = mb.off_threshold_ns
        self.ports = config.monitored_ports

        # Stage + extern handles (counters live on the stage objects).
        self.parser = monitor.pipeline.parser
        self.pipeline = monitor.pipeline
        self.flow_table = ft
        self.rtt_loss = rtt
        self.queue = queue
        self.microburst = mb
        self.long_flow_digest = ft.long_flow_digest
        self.termination_digest = ft.termination_digest
        self.mb_digest = mb.digest

        # Raw register cell arrays (uint64); overlays resolve misses here.
        self.c_flow_key = ft.flow_key._cells
        self.c_flow_src = ft.flow_src._cells
        self.c_flow_dst = ft.flow_dst._cells
        self.c_flow_sport = ft.flow_sport._cells
        self.c_flow_dport = ft.flow_dport._cells
        self.c_flow_bytes = ft.flow_bytes._cells
        self.c_flow_pkts = ft.flow_pkts._cells
        self.c_flow_start = ft.flow_start._cells
        self.c_flow_last = ft.flow_last._cells
        self.c_flow_fin = ft.flow_fin._cells
        self.c_prev_seq = rtt.prev_seq._cells
        self.c_pkt_loss = rtt.pkt_loss._cells
        self.c_rtt = rtt.rtt._cells
        self.c_rtt_count = rtt.rtt_count._cells
        self.c_eack_ts = rtt.eack_ts._cells
        self.c_eack_sig = rtt.eack_sig._cells
        self.c_high_seq = flight.high_seq._cells
        self.c_high_ack = flight.high_ack._cells
        self.c_flow_rwnd = flight.flow_rwnd._cells
        self.c_q_stash_ts = queue.stash_ts._cells
        self.c_q_stash_sig = queue.stash_sig._cells
        self.c_flow_qdelay = queue.flow_qdelay._cells
        self.c_flow_qdelay_max = queue.flow_qdelay_max._cells
        self.c_flow_ce = queue.flow_ce._cells
        self.c_mb_state = mb.state._cells
        self.c_mb_start = mb.start._cells
        self.c_mb_peak = mb.peak._cells
        self.c_mb_pkts = mb.pkt_count._cells

        self.cms = ft.cms
        self.cms_rows_arr = ft.cms._rows
        self.cms_width = ft.cms.width
        self.cms_conservative = ft.cms.conservative

        self.rtt_hist = rtt.rtt_hist
        self.qdepth_hist = queue.qdepth_hist
        if self.rtt_hist is not None:
            self._rtt_edges = np.asarray(self.rtt_hist.edges, dtype=np.int64)
            self._q_edges = np.asarray(self.qdepth_hist.edges, dtype=np.int64)
        self.time_windows = queue.time_windows

        # flow 4-tuple -> (fid, rid, slot, cms row indices).  Protocol is
        # constant (the parser rejected everything but TCP).
        self._flow_memo: dict = {}

    # -- per-flow derived values ------------------------------------------------

    def _flow_entry(self, src_ip, dst_ip, src_port, dst_port):
        """Memoised (flow_id, rev_flow_id, slot, cms_rows) — identical to
        FlowIdEngine.ids + the three HashEngine row indices."""
        import struct
        import zlib
        fwd = struct.pack("!IIHHB", src_ip, dst_ip, src_port, dst_port, PROTO_TCP)
        rev = struct.pack("!IIHHB", dst_ip, src_ip, dst_port, src_port, PROTO_TCP)
        fid = zlib.crc32(fwd) & _M32
        rid = zlib.crc32(rev) & _M32
        width = self.cms_width
        rows = [fid % width]
        for salt in range(1, self.cms._rows.shape[0]):
            h = fid ^ ((salt * 0x9E3779B9) & _M32)
            h &= _M32
            h ^= h >> 16
            h = (h * 0x85EBCA6B) & _M32
            h ^= h >> 13
            h = (h * 0xC2B2AE35) & _M32
            h ^= h >> 16
            rows.append(h % width)
        entry = (fid, rid, fid & self.flow_mask, tuple(rows))
        return entry

    # -- the flush ---------------------------------------------------------------

    def flush(self) -> None:
        buf = self.buf
        n = len(buf)
        if n == 0:
            return

        # ---- phase 1: columnar precompute -------------------------------------
        parser = self.parser
        pipeline = self.pipeline
        memo = self._flow_memo
        memo_get = memo.get

        # A mirrored packet shows up as (at least) one ingress and one
        # egress row per batch; header fields are immutable once built
        # (ECN is captured per copy at append time), so extraction runs
        # once per object and the per-row work is one tuple append.  The
        # C-level transpose below then yields the mutable column lists
        # the mutation hook and the vectorised hashes operate on.
        pmemo: dict = {}
        pmemo_get = pmemo.get
        rejected = 0
        out: list = []
        append = out.append
        rej_row = (False, 0, 0, 0, 0, 0, 0, 0, (), 0, 0,
                   0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
        for pkt, port, ts, epid, ecn in buf:
            pid = id(pkt)
            ext = pmemo_get(pid)
            if ext is None:
                if pkt.proto != PROTO_TCP:
                    pmemo[pid] = False
                    rejected += 1
                    append(rej_row)
                    continue
                src = pkt.src_ip
                dst = pkt.dst_ip
                sport = pkt.src_port
                dport = pkt.dst_port
                key = (src, dst, sport, dport)
                ent = memo_get(key)
                if ent is None:
                    ent = self._flow_entry(src, dst, sport, dport)
                    memo[key] = ent
                fid, rid, slot, rows = ent
                seq = pkt.seq & _M32
                flags = pkt.flags
                plen = pkt.payload_len
                # eACK per Algorithm 1: SYN and FIN each consume a seqno.
                ext = (fid, rid, slot, rows, seq, pkt.ack & _M32, flags,
                       plen, pkt.ip_total_len, pkt.window, src, dst,
                       sport, dport, pkt.ip_id,
                       (seq + plen + (flags & 0x02 == 0x02)
                        + (flags & 0x01)) & _M32)
                pmemo[pid] = ext
            elif ext is False:
                rejected += 1
                append(rej_row)
                continue
            (fid, rid, slot, rows, seq, ack, flags, plen, tlen, window,
             src, dst, sport, dport, ipid, eack) = ext
            append((True, port, ts, epid, ecn, fid, rid, slot, rows, seq,
                    ack, flags, plen, tlen, window, src, dst, sport,
                    dport, ipid, eack))
        (a_valid, a_port, a_ts, a_epid, a_ecn, a_fid, a_rid, a_slot,
         a_rows, a_seq, a_ack, a_flags, a_plen, a_tlen, a_window, a_src,
         a_dst, a_sport, a_dport, a_ipid, a_eack) = map(list, zip(*out))
        del out
        # CMS increment amount; the mutation suite zeroes lanes here to
        # model a broken sketch-update kernel.
        a_cms_add = list(a_plen)
        accepted = n - rejected
        parser.accepted += accepted
        parser.rejected += rejected
        pipeline.packets_in += n
        pipeline.packets_dropped += rejected
        buf.clear()

        # Vectorised signature hashes (one CRC32 sweep per matrix):
        #   data path : crc32(!II rev_flow_id, eACK)
        #   ACK path  : crc32(!II flow_id, ack)
        #   queue pair: crc32(!IIHIIH src, dst, ip_id, seq, ack, len&0xFFFF)
        m = np.empty((n, 8), dtype=np.uint8)
        m[:, 0:4] = _be32(a_rid, n)
        m[:, 4:8] = _be32(a_eack, n)
        a_sig_data = crc32_rows(m).tolist()
        m[:, 0:4] = _be32(a_fid, n)
        m[:, 4:8] = _be32(a_ack, n)
        a_sig_ack = crc32_rows(m).tolist()
        q = np.empty((n, 20), dtype=np.uint8)
        q[:, 0:4] = _be32(a_src, n)
        q[:, 4:8] = _be32(a_dst, n)
        q[:, 8:10] = _be16(a_ipid, n)
        q[:, 10:14] = _be32(a_seq, n)
        q[:, 14:18] = _be32(a_ack, n)
        q[:, 18:20] = _be16([t & _M16 for t in a_tlen], n)
        a_qsig = crc32_rows(q).tolist()

        if self.debug_mutator is not None:
            self.debug_mutator({
                "valid": a_valid, "port": a_port, "ts": a_ts, "ecn": a_ecn,
                "fid": a_fid, "rid": a_rid, "slot": a_slot, "rows": a_rows,
                "seq": a_seq, "ack": a_ack, "flags": a_flags,
                "plen": a_plen, "tlen": a_tlen, "window": a_window,
                "eack": a_eack, "cms_add": a_cms_add,
                "sig_data": a_sig_data, "sig_ack": a_sig_ack, "qsig": a_qsig,
                "epid": a_epid,
            })

        # ---- phase 2: fused sequential replay ----------------------------------
        # Overlay dicts hold batch-local register state as plain ints;
        # misses fall back to the numpy cells.  Masks follow each
        # register's declared width exactly.
        TSM = self.ts_mask
        FMASK = self.flow_mask
        M64 = (1 << 64) - 1
        long_flow_bytes = self.long_flow_bytes
        rtt_max_age = self.rtt_max_age_ns
        eack_size = self.eack_stash_size
        q_size = self.q_stash_size
        mb_on = self.mb_on_ns
        mb_off = self.mb_off_ns
        ports = self.ports
        conservative = self.cms_conservative
        cms_depth_range = range(self.cms_rows_arr.shape[0])

        c_flow_key = self.c_flow_key
        c_flow_bytes = self.c_flow_bytes
        c_flow_pkts = self.c_flow_pkts
        c_flow_start = self.c_flow_start
        c_flow_fin = self.c_flow_fin
        c_prev_seq = self.c_prev_seq
        c_pkt_loss = self.c_pkt_loss
        c_rtt = self.c_rtt
        c_rtt_count = self.c_rtt_count
        c_eack_ts = self.c_eack_ts
        c_eack_sig = self.c_eack_sig
        c_high_seq = self.c_high_seq
        c_high_ack = self.c_high_ack
        c_q_stash_ts = self.c_q_stash_ts
        c_q_stash_sig = self.c_q_stash_sig
        c_flow_qdelay_max = self.c_flow_qdelay_max
        c_flow_ce = self.c_flow_ce
        c_mb_state = self.c_mb_state
        c_mb_start = self.c_mb_start
        c_mb_peak = self.c_mb_peak
        c_mb_pkts = self.c_mb_pkts
        cms_rows_arr = self.cms_rows_arr

        ov_flow_key: dict = {}
        ov_flow_src: dict = {}
        ov_flow_dst: dict = {}
        ov_flow_sport: dict = {}
        ov_flow_dport: dict = {}
        ov_flow_bytes: dict = {}
        ov_flow_pkts: dict = {}
        ov_flow_start: dict = {}
        ov_flow_last: dict = {}
        ov_flow_fin: dict = {}
        ov_prev_seq: dict = {}
        ov_pkt_loss: dict = {}
        ov_rtt: dict = {}
        ov_rtt_count: dict = {}
        ov_eack_ts: dict = {}
        ov_eack_sig: dict = {}
        ov_high_seq: dict = {}
        ov_high_ack: dict = {}
        ov_flow_rwnd: dict = {}
        ov_q_stash_ts: dict = {}
        ov_q_stash_sig: dict = {}
        ov_flow_qdelay: dict = {}
        ov_flow_qdelay_max: dict = {}
        ov_flow_ce: dict = {}
        ov_mb_state: dict = {}
        ov_mb_start: dict = {}
        ov_mb_peak: dict = {}
        ov_mb_pkts: dict = {}
        ov_cms: dict = {}

        # Preload every overlay cell the replay loop can *read*, so the
        # hot loop's register accesses are guaranteed dict hits (no
        # None-miss branch, no scalar numpy fallback).  Forward slots,
        # reverse slots, monitored ports and CMS rows are tiny sets; the
        # two stash tables are preloaded at the (vectorised) signature
        # cells this batch can address.
        # The flow memo holds every distinct flow the kernel has ever
        # extracted, which is a superset of the slots/rows this batch
        # touches (mutation hooks shuffle lanes *between* rows, so they
        # stay inside this domain too) — far cheaper than re-scanning
        # the columns per flush.
        slots = set()
        rslots = set()
        rows_set = set()
        for fid_m, rid_m, slot_m, rows_m in memo.values():
            slots.add(slot_m)
            rslots.add(rid_m & FMASK)
            slots.add(rid_m & FMASK)
            rslots.add(slot_m)
            rows_set.add(rows_m)
        if slots:
            sl = list(slots)
            ix = np.fromiter(sl, dtype=np.intp, count=len(sl))
            for ov, cells in (
                (ov_flow_key, c_flow_key), (ov_flow_bytes, c_flow_bytes),
                (ov_flow_pkts, c_flow_pkts), (ov_flow_start, c_flow_start),
                (ov_flow_fin, c_flow_fin), (ov_prev_seq, c_prev_seq),
                (ov_pkt_loss, c_pkt_loss), (ov_rtt_count, c_rtt_count),
                (ov_high_seq, c_high_seq),
                (ov_flow_qdelay_max, c_flow_qdelay_max),
                (ov_flow_ce, c_flow_ce),
            ):
                ov.update(zip(sl, cells[ix].tolist()))
            rl_list = list(rslots)
            ix = np.fromiter(rl_list, dtype=np.intp, count=len(rl_list))
            ov_high_ack.update(zip(rl_list, c_high_ack[ix].tolist()))
            for rows_t in rows_set:
                for r, col in enumerate(rows_t):
                    ov_cms[(r, col)] = int(cms_rows_arr[r, col])
        pl = list(range(ports))
        for ov, cells in ((ov_mb_state, c_mb_state), (ov_mb_start, c_mb_start),
                          (ov_mb_peak, c_mb_peak), (ov_mb_pkts, c_mb_pkts)):
            ov.update(zip(pl, cells[:ports].tolist()))
        ecells_arr = np.unique(np.concatenate((
            np.asarray(a_sig_data, dtype=np.int64) % eack_size,
            np.asarray(a_sig_ack, dtype=np.int64) % eack_size)))
        ecells = ecells_arr.tolist()
        ov_eack_ts.update(zip(ecells, c_eack_ts[ecells_arr].tolist()))
        ov_eack_sig.update(zip(ecells, c_eack_sig[ecells_arr].tolist()))
        qcells_arr = np.unique(np.asarray(a_qsig, dtype=np.int64) % q_size)
        qcells = qcells_arr.tolist()
        ov_q_stash_ts.update(zip(qcells, c_q_stash_ts[qcells_arr].tolist()))
        ov_q_stash_sig.update(zip(qcells, c_q_stash_sig[qcells_arr].tolist()))

        rtt_hist_obs: list = []
        qdepth_hist_obs: list = []
        tw_obs: list = []

        ft = self.flow_table
        rl = self.rtt_loss
        qs = self.queue
        mb = self.microburst
        rtt_hist_on = self.rtt_hist is not None
        qdepth_hist_on = self.qdepth_hist is not None
        tw_on = self.time_windows is not None
        slot_collisions = 0
        cms_updates = 0
        rtt_evictions = 0
        rtt_matches = 0
        rtt_misses = 0
        rtt_stale = 0
        pairs_matched = 0
        pairs_missed = 0
        q_evictions = 0
        bursts = 0
        long_flow_emit = self.long_flow_digest.emit
        termination_emit = self.termination_digest.emit
        mb_emit = self.mb_digest.emit

        for i in range(n):
            if not a_valid[i]:
                continue
            fid = a_fid[i]
            ts = a_ts[i]
            if a_port[i] == 0:
                # ---- ingress-TAP copy: flow table, RTT/loss, flight ----
                plen = a_plen[i]
                flags = a_flags[i]
                slot = a_slot[i]
                key = ov_flow_key[slot]
                fslot = -1
                if key == fid:
                    fslot = slot
                elif key == 0:
                    if plen > 0:
                        # CMS update (returns post-update estimate).
                        cms_updates += 1
                        rows = a_rows[i]
                        amount = a_cms_add[i]
                        if conservative:
                            current = None
                            for r in cms_depth_range:
                                v = ov_cms[(r, rows[r])]
                                if current is None or v < current:
                                    current = v
                            est = current + amount
                            for r in cms_depth_range:
                                cell = (r, rows[r])
                                if ov_cms[cell] < est:
                                    ov_cms[cell] = est
                        else:
                            est = None
                            for r in cms_depth_range:
                                cell = (r, rows[r])
                                v = ov_cms[cell] + amount
                                ov_cms[cell] = v
                                if est is None or v < est:
                                    est = v
                        if est >= long_flow_bytes:
                            # _claim: register file + long_flow digest.
                            ov_flow_key[slot] = fid
                            ov_flow_src[slot] = a_src[i]
                            ov_flow_dst[slot] = a_dst[i]
                            ov_flow_sport[slot] = a_sport[i] & _M16
                            ov_flow_dport[slot] = a_dport[i] & _M16
                            ov_flow_start[slot] = ts & TSM
                            ov_flow_fin[slot] = 0
                            fslot = slot
                            long_flow_emit(
                                flow_id=fid,
                                rev_flow_id=a_rid[i],
                                slot=slot,
                                src_ip=a_src[i],
                                dst_ip=a_dst[i],
                                src_port=a_sport[i],
                                dst_port=a_dport[i],
                                first_seen_ns=ts,
                            )
                else:
                    slot_collisions += 1

                if fslot >= 0:
                    ov_flow_bytes[slot] = (ov_flow_bytes[slot] + a_tlen[i]) & M64
                    ov_flow_pkts[slot] = (ov_flow_pkts[slot] + 1) & M64
                    ov_flow_last[slot] = ts & TSM
                    if flags & 0x05:  # FIN | RST
                        if not ov_flow_fin[slot]:
                            ov_flow_fin[slot] = 1
                            start = ov_flow_start[slot]
                            # _on_termination reads pkt_loss[slot]
                            # synchronously: sync that overlay cell first.
                            c_pkt_loss[slot] = ov_pkt_loss[slot]
                            termination_emit(
                                flow_id=fid,
                                slot=slot,
                                src_ip=a_src[i],
                                dst_ip=a_dst[i],
                                src_port=a_sport[i],
                                dst_port=a_dport[i],
                                start_ns=start,
                                end_ns=ts,
                                total_bytes=ov_flow_bytes[slot],
                                total_packets=ov_flow_pkts[slot],
                            )

                # ---- RTT / loss (Algorithm 1) ----
                now48 = ts & TSM
                if plen > 0:
                    idx = slot  # fid & FMASK == slot
                    prev = ov_prev_seq[idx]
                    seq = a_seq[i]
                    if prev != 0 and ((seq - prev) & _M32) >= 0x80000000:
                        ov_pkt_loss[idx] = (ov_pkt_loss[idx] + 1) & _M32
                    else:
                        ov_prev_seq[idx] = seq
                        sig = a_sig_data[i]
                        cell = sig % eack_size
                        if ov_eack_ts[cell] != 0:
                            rtt_evictions += 1
                        ov_eack_ts[cell] = now48 if now48 != 0 else 1
                        ov_eack_sig[cell] = sig
                elif flags & 0x10 and not flags & 0x02:  # ACK, not SYN
                    sig = a_sig_ack[i]
                    cell = sig % eack_size
                    stored = ov_eack_ts[cell]
                    if stored != 0 and ov_eack_sig[cell] == sig:
                        rtt_v = (now48 - stored) & TSM
                        ov_eack_ts[cell] = 0
                        ov_eack_sig[cell] = 0
                        if rtt_v > rtt_max_age:
                            rtt_stale += 1
                        else:
                            idx = slot
                            ov_rtt[idx] = rtt_v
                            ov_rtt_count[idx] = (ov_rtt_count[idx] + 1) & _M32
                            if rtt_hist_on:
                                rtt_hist_obs.append((idx, rtt_v))
                            rtt_matches += 1
                    else:
                        rtt_misses += 1

                # ---- flight size ----
                if plen > 0:
                    idx = slot
                    nv = (a_seq[i] + plen) & _M32
                    if nv > ov_high_seq[idx]:
                        ov_high_seq[idx] = nv
                elif flags & 0x10 and not flags & 0x02:
                    idx = a_rid[i] & FMASK
                    nv = a_ack[i]
                    if nv > ov_high_ack[idx]:
                        ov_high_ack[idx] = nv
                    ov_flow_rwnd[idx] = a_window[i] & _M32

                # ---- queue monitor, ingress branch: stash the timestamp ----
                sig = a_qsig[i]
                cell = sig % q_size
                if ov_q_stash_ts[cell] != 0:
                    q_evictions += 1
                ov_q_stash_ts[cell] = now48 if now48 != 0 else 1
                ov_q_stash_sig[cell] = sig
                # Microburst stage ignores ingress copies.
            else:
                # ---- egress-TAP copy: queue pairing + microburst ----
                sig = a_qsig[i]
                cell = sig % q_size
                stored = ov_q_stash_ts[cell]
                if stored == 0 or ov_q_stash_sig[cell] != sig:
                    pairs_missed += 1
                    continue
                now48 = ts & TSM
                delay = (now48 - stored) & TSM
                ov_q_stash_ts[cell] = 0
                ov_q_stash_sig[cell] = 0
                pairs_matched += 1
                epid = a_epid[i]
                port_q = epid % ports
                if qdepth_hist_on:
                    qdepth_hist_obs.append((port_q, delay))
                if tw_on:
                    tw_obs.append((now48, fid, a_tlen[i], delay))
                idx = a_slot[i]
                ov_flow_qdelay[idx] = delay
                if delay > ov_flow_qdelay_max[idx]:
                    ov_flow_qdelay_max[idx] = delay
                if a_ecn[i] == 3:  # CE
                    ov_flow_ce[idx] = (ov_flow_ce[idx] + 1) & _M32

                # Microburst hysteresis (per monitored egress queue).
                if not ov_mb_state[port_q]:
                    if delay >= mb_on:
                        ov_mb_state[port_q] = 1
                        ov_mb_start[port_q] = max(0, ts - delay) & TSM
                        ov_mb_peak[port_q] = delay & TSM
                        ov_mb_pkts[port_q] = 1
                    continue
                if (delay & TSM) > ov_mb_peak[port_q]:
                    ov_mb_peak[port_q] = delay & TSM
                ov_mb_pkts[port_q] = (ov_mb_pkts[port_q] + 1) & _M32
                if delay <= mb_off:
                    ov_mb_state[port_q] = 0
                    start = ov_mb_start[port_q]
                    bursts += 1
                    peak = ov_mb_peak[port_q]
                    pkts_v = ov_mb_pkts[port_q]
                    mb_emit(
                        start_ns=start,
                        duration_ns=max(0, ts - start),
                        peak_queue_delay_ns=peak,
                        packets=pkts_v,
                        port_id=port_q,
                    )

        # ---- write-back: overlays -> register cells, histograms, counters ------
        for ov, cells in (
            (ov_flow_key, c_flow_key), (ov_flow_src, self.c_flow_src),
            (ov_flow_dst, self.c_flow_dst), (ov_flow_sport, self.c_flow_sport),
            (ov_flow_dport, self.c_flow_dport), (ov_flow_bytes, c_flow_bytes),
            (ov_flow_pkts, c_flow_pkts), (ov_flow_start, c_flow_start),
            (ov_flow_last, self.c_flow_last), (ov_flow_fin, c_flow_fin),
            (ov_prev_seq, c_prev_seq), (ov_pkt_loss, c_pkt_loss),
            (ov_rtt, c_rtt), (ov_rtt_count, c_rtt_count),
            (ov_eack_ts, c_eack_ts), (ov_eack_sig, c_eack_sig),
            (ov_high_seq, c_high_seq), (ov_high_ack, c_high_ack),
            (ov_flow_rwnd, self.c_flow_rwnd),
            (ov_q_stash_ts, c_q_stash_ts), (ov_q_stash_sig, c_q_stash_sig),
            (ov_flow_qdelay, self.c_flow_qdelay),
            (ov_flow_qdelay_max, self.c_flow_qdelay_max),
            (ov_flow_ce, c_flow_ce),
            (ov_mb_state, c_mb_state), (ov_mb_start, c_mb_start),
            (ov_mb_peak, c_mb_peak), (ov_mb_pkts, c_mb_pkts),
        ):
            if ov:
                cells[np.fromiter(ov.keys(), dtype=np.intp, count=len(ov))] = \
                    np.fromiter(ov.values(), dtype=np.uint64, count=len(ov))
        if ov_cms:
            rr = np.empty(len(ov_cms), dtype=np.intp)
            cc = np.empty(len(ov_cms), dtype=np.intp)
            vv = np.empty(len(ov_cms), dtype=np.uint64)
            for j, ((r, c), v) in enumerate(ov_cms.items()):
                rr[j] = r
                cc[j] = c
                vv[j] = v
            cms_rows_arr[rr, cc] = vv
        if rtt_hist_obs:
            hist = self.rtt_hist
            idxs, vals = zip(*rtt_hist_obs)
            bins = np.searchsorted(self._rtt_edges,
                                   np.asarray(vals, dtype=np.int64), side="left")
            np.add.at(hist._banks[hist.active],
                      (np.asarray(idxs, dtype=np.intp), bins), 1)
            hist.ops += len(rtt_hist_obs)
        if qdepth_hist_obs:
            hist = self.qdepth_hist
            idxs, vals = zip(*qdepth_hist_obs)
            bins = np.searchsorted(self._q_edges,
                                   np.asarray(vals, dtype=np.int64), side="left")
            np.add.at(hist._banks[hist.active],
                      (np.asarray(idxs, dtype=np.intp), bins), 1)
            hist.ops += len(qdepth_hist_obs)
        if tw_obs:
            # Sequential replay: window cells hold last-writer signatures
            # and running maxima, so updates are order-dependent and must
            # land exactly as the scalar twin would apply them.
            tw_observe = self.time_windows.observe
            for tw_ts, tw_fid, tw_len, tw_delay in tw_obs:
                tw_observe(tw_ts, tw_fid, tw_len, tw_delay)

        ft.slot_collisions += slot_collisions
        self.cms.updates += cms_updates
        rl.stash_evictions += rtt_evictions
        rl.rtt_matches += rtt_matches
        rl.rtt_misses += rtt_misses
        rl.rtt_stale += rtt_stale
        qs.pairs_matched += pairs_matched
        qs.pairs_missed += pairs_missed
        qs.stash_evictions += q_evictions
        mb.bursts_detected += bursts
