"""Report structures (the 'Report_v1' of Fig. 7).

The control plane restructures raw register reads into these records and
ships them to the archiver pipeline.  ``to_document()`` produces the
JSON-style dict that the Logstash TCP input plugin ingests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from enum import Enum
from typing import List, Optional

from repro.netsim.packet import int_to_ip
from repro.netsim.units import NS_PER_S


class LimiterVerdict(Enum):
    """§4.4 classification of what bounds a flow's throughput."""

    NETWORK_LIMITED = "network"
    SENDER_LIMITED = "sender"
    RECEIVER_LIMITED = "receiver"
    PROBING = "probing"      # flight still expanding, no losses yet
    UNKNOWN = "unknown"

    @property
    def is_endpoint(self) -> bool:
        return self in (LimiterVerdict.SENDER_LIMITED, LimiterVerdict.RECEIVER_LIMITED)


@dataclass
class FlowSample:
    """One per-flow measurement at one extraction instant."""

    time_ns: int
    metric: str                 # MetricKind.value
    flow_id: int
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    value: float                # metric units: bps / % / ms / %
    boosted: bool = False

    def to_document(self) -> dict:
        return {
            "type": f"p4_{self.metric}",
            "@timestamp": self.time_ns / NS_PER_S,
            "flow_id": self.flow_id,
            "source_ip": int_to_ip(self.src_ip),
            "destination_ip": int_to_ip(self.dst_ip),
            "source_port": self.src_port,
            "destination_port": self.dst_port,
            "value": self.value,
            "boosted": self.boosted,
        }


@dataclass
class AggregateSample:
    """Control-plane-derived network-wide metrics (§5.3)."""

    time_ns: int
    link_utilization: float     # fraction of bottleneck capacity
    jain_fairness: float
    active_flows: int
    total_bytes: int
    total_packets: int

    def to_document(self) -> dict:
        return {
            "type": "p4_aggregate",
            "@timestamp": self.time_ns / NS_PER_S,
            "link_utilization": self.link_utilization,
            "jain_fairness": self.jain_fairness,
            "active_flows": self.active_flows,
            "total_bytes": self.total_bytes,
            "total_packets": self.total_packets,
        }


@dataclass
class MicroburstEvent:
    """A data-plane-detected microburst, ns start time and duration."""

    start_ns: int
    duration_ns: int
    peak_queue_delay_ns: int
    peak_occupancy: float       # fraction of the full buffer
    packets: int
    port_id: int = 0            # which tapped egress queue

    def to_document(self) -> dict:
        return {
            "type": "p4_microburst",
            "@timestamp": self.start_ns / NS_PER_S,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "peak_queue_delay_ns": self.peak_queue_delay_ns,
            "peak_occupancy": self.peak_occupancy,
            "packets": self.packets,
            "port_id": self.port_id,
        }


@dataclass
class FlowTerminationReport:
    """The detailed terminated-long-flow report of §3.3.2: nanosecond
    start/end, totals, average throughput, retransmission count and %."""

    flow_id: int
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    start_ns: int
    end_ns: int
    total_packets: int
    total_bytes: int
    retransmissions: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def avg_throughput_bps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.total_bytes * 8 * NS_PER_S / self.duration_ns

    @property
    def retransmission_pct(self) -> float:
        if self.total_packets == 0:
            return 0.0
        return 100.0 * self.retransmissions / self.total_packets

    def to_document(self) -> dict:
        return {
            "type": "p4_flow_termination",
            "@timestamp": self.end_ns / NS_PER_S,
            "flow_id": self.flow_id,
            "source_ip": int_to_ip(self.src_ip),
            "destination_ip": int_to_ip(self.dst_ip),
            "source_port": self.src_port,
            "destination_port": self.dst_port,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_s": self.duration_ns / NS_PER_S,
            "total_packets": self.total_packets,
            "total_bytes": self.total_bytes,
            "avg_throughput_bps": self.avg_throughput_bps,
            "retransmissions": self.retransmissions,
            "retransmission_pct": self.retransmission_pct,
        }


@dataclass
class Alert:
    """Raised when a metric crosses its administrator-set threshold."""

    time_ns: int
    metric: str
    flow_id: Optional[int]
    value: float
    threshold: float
    cleared: bool = False  # True when the alert condition ends

    def to_document(self) -> dict:
        return {
            "type": "p4_alert",
            "@timestamp": self.time_ns / NS_PER_S,
            "metric": self.metric,
            "flow_id": self.flow_id,
            "value": self.value,
            "threshold": self.threshold,
            "event": "cleared" if self.cleared else "raised",
        }


@dataclass
class HistogramReport:
    """Full distribution shipped at a histogram-extraction tick: the
    cumulative bin counts of one scope (a flow's RTT, a port's queue
    depth, or the all-flow merge) plus the bucket-upper-bound
    percentiles derived from them.  Archived as ``repro-histogram-v1``."""

    time_ns: int
    metric: str                  # "rtt" | "queue_depth"
    scope: str                   # "flow" | "port" | "all"
    edges_ns: List[int]          # shared bin upper bounds, nanoseconds
    counts: List[int]            # len(edges_ns) + 1, last = overflow
    count: int                   # total samples (== sum(counts))
    p50_ms: float
    p90_ms: float
    p99_ms: float
    p999_ms: float
    window_count: int = 0        # samples added since the previous tick
    flow_id: Optional[int] = None
    src_ip: Optional[int] = None
    dst_ip: Optional[int] = None
    port_id: Optional[int] = None
    # Total-variation bin-mass shift against the previous window (only
    # meaningful on scope="all" reports; drives change-point alerts).
    shift: Optional[float] = None

    def to_document(self) -> dict:
        doc = {
            "type": "repro-histogram-v1",
            "@timestamp": self.time_ns / NS_PER_S,
            "metric": self.metric,
            "scope": self.scope,
            "edges_ns": list(self.edges_ns),
            "counts": list(self.counts),
            "count": self.count,
            "window_count": self.window_count,
            "p50_ms": self.p50_ms,
            "p90_ms": self.p90_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
        }
        if self.flow_id is not None:
            doc["flow_id"] = self.flow_id
        if self.src_ip is not None:
            doc["source_ip"] = int_to_ip(self.src_ip)
        if self.dst_ip is not None:
            doc["destination_ip"] = int_to_ip(self.dst_ip)
        if self.port_id is not None:
            doc["port_id"] = self.port_id
        if self.shift is not None:
            doc["shift"] = self.shift
        return doc


@dataclass
class ForensicsReport:
    """Culprit attribution for one queue-trouble interval: the ranked
    flows whose packets occupied the queue during ``[t0_ns, t1_ns)``,
    decoded from the time-window queue-ancestry registers at the finest
    coarsening level that still covers the interval.  Shipped when a
    microburst or rtt_distribution alert fires (or on an explicit CLI
    query) and archived as ``repro-forensics-v1``."""

    time_ns: int
    trigger: str                 # "microburst" | "rtt_distribution" | "query"
    t0_ns: int
    t1_ns: int
    level: int                   # coarsening level the query resolved at
    window_width_ns: int         # window width at that level
    windows: int                 # non-empty windows inside the interval
    total_bytes: int             # byte mass across those windows
    # Ranked attributions, heaviest contributor first.  Each entry:
    # flow_id, bytes, packets, windows (windows the flow signed),
    # coverage (fraction of non-empty windows signed), share (fraction
    # of total_bytes), max_qdepth_ns, and source/destination ip/port
    # when the flow is still tracked.
    culprits: List[dict] = field(default_factory=list)
    victim_flow_id: Optional[int] = None
    port_id: Optional[int] = None

    def to_document(self) -> dict:
        doc = {
            "type": "repro-forensics-v1",
            "@timestamp": self.time_ns / NS_PER_S,
            "trigger": self.trigger,
            "t0_ns": self.t0_ns,
            "t1_ns": self.t1_ns,
            "level": self.level,
            "window_width_ns": self.window_width_ns,
            "windows": self.windows,
            "total_bytes": self.total_bytes,
            "culprits": [dict(c) for c in self.culprits],
        }
        if self.victim_flow_id is not None:
            doc["victim_flow_id"] = self.victim_flow_id
        if self.port_id is not None:
            doc["port_id"] = self.port_id
        return doc


@dataclass
class LimiterReport:
    """Per-flow §4.4 verdict at one extraction instant."""

    time_ns: int
    flow_id: int
    src_ip: int
    dst_ip: int
    verdict: LimiterVerdict
    flight_bytes: float
    flight_cv: float
    loss_delta: int
    rwnd_bytes: int

    def to_document(self) -> dict:
        return {
            "type": "p4_limiter",
            "@timestamp": self.time_ns / NS_PER_S,
            "flow_id": self.flow_id,
            "source_ip": int_to_ip(self.src_ip),
            "destination_ip": int_to_ip(self.dst_ip),
            "verdict": self.verdict.value,
            "flight_bytes": self.flight_bytes,
            "flight_cv": self.flight_cv,
            "loss_delta": self.loss_delta,
            "rwnd_bytes": self.rwnd_bytes,
        }
