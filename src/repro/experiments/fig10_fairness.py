"""Fig. 10 — link utilisation and Jain's fairness index over the Fig. 9
interval (§5.3).

Paper shape: the link stays (nearly) fully utilised throughout, while
the fairness index departs from ≈1 for a stretch after the third flow
joins (the time the three flows need to converge) before recovering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.common import ScenarioConfig, mean, window
from repro.experiments.fig9_perflow import Fig9Result, run_fig9
from repro.viz import timeseries_panel


@dataclass
class Fig10Result:
    fig9: Fig9Result
    utilization: List[Tuple[float, float]]
    fairness: List[Tuple[float, float]]
    active_flows: List[Tuple[float, int]]

    @property
    def join_s(self) -> float:
        return self.fig9.join_s

    def utilization_during(self, lo_s: float, hi_s: float) -> float:
        return mean(window(self.utilization, lo_s, hi_s))

    def min_fairness_after_join(self, horizon_s: float = 10.0) -> float:
        vals = window(self.fairness, self.join_s, self.join_s + horizon_s)
        return min(vals) if vals else 1.0

    def settled_fairness(self) -> float:
        d = self.fig9.duration_s
        return mean(window(self.fairness, 0.75 * d, d))

    def unfair_period_s(self, threshold: float = 0.9) -> float:
        """Length of the post-join stretch with fairness below
        ``threshold`` — the paper's '~20 seconds' observation."""
        start: Optional[float] = None
        last_bad: Optional[float] = None
        for t, v in self.fairness:
            if t < self.join_s:
                continue
            if v < threshold:
                if start is None:
                    start = t
                last_bad = t
        if start is None or last_bad is None:
            return 0.0
        return last_bad - start + 1.0  # inclusive of the last bad sample

    def summary(self) -> str:
        return "\n".join([
            timeseries_panel({"utilization": self.utilization}, "Link utilization"),
            timeseries_panel({"fairness": self.fairness}, "Jain's fairness index"),
            f"mean utilization (settled): "
            f"{self.utilization_during(self.join_s, self.fig9.duration_s):.2f}",
            f"fairness dip after join: {self.min_fairness_after_join():.2f}; "
            f"unfair period ≈ {self.unfair_period_s():.0f}s; "
            f"settled fairness: {self.settled_fairness():.2f}",
        ])


def run_fig10(
    duration_s: float = 40.0,
    join_s: float = 15.0,
    config: Optional[ScenarioConfig] = None,
    fig9: Optional[Fig9Result] = None,
) -> Fig10Result:
    """Aggregate metrics from the Fig. 9 run (reuses a supplied run so a
    harness can regenerate both figures from one simulation)."""
    result9 = fig9 or run_fig9(duration_s=duration_s, join_s=join_s, config=config)
    cp = result9.scenario.control_plane
    ns = 1e9
    return Fig10Result(
        fig9=result9,
        utilization=[(a.time_ns / ns, a.link_utilization) for a in cp.aggregate_samples],
        fairness=[(a.time_ns / ns, a.jain_fairness) for a in cp.aggregate_samples],
        active_flows=[(a.time_ns / ns, a.active_flows) for a in cp.aggregate_samples],
    )
