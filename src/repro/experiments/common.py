"""Scenario framework: Fig. 8 topology + P4 monitor + perfSONAR node +
workloads, assembled behind one object so each experiment reads as its
recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netsim.engine import Simulator
from repro.netsim.netem import LossImpairment
from repro.telemetry import provenance
from repro.netsim.packet import PROTO_UDP, Packet, int_to_ip
from repro.netsim.topology import ScienceDMZTopology, TopologyConfig, build_science_dmz
from repro.netsim.units import NS_PER_S, mbps, seconds
from repro.core.config import MetricKind, MonitorConfig
from repro.core.control_plane import MonitorControlPlane, TrackedFlow
from repro.core.monitor import P4Monitor
from repro.perfsonar.node import PerfSonarNode
from repro.tcp.apps import Iperf3Client, Iperf3Server
from repro.tcp.stack import TcpHostStack


@dataclass
class ScenarioConfig:
    """Scaled experiment parameters (paper values in comments)."""

    bottleneck_mbps: float = 100.0          # paper: 10 000 (10 Gbps)
    rtts_ms: Tuple[float, ...] = (50.0, 75.0, 100.0)  # paper: same
    reference_rtt_ms: float = 100.0
    buffer_bdp_fraction: float = 1.0        # paper §5.4.1 guideline: 1 BDP
    mss: int = 8948
    access_multiplier: float = 4.0          # DTN NICs outrun the bottleneck
    monitor_overrides: dict = field(default_factory=dict)

    def topology_config(self) -> TopologyConfig:
        return TopologyConfig(
            bottleneck_bps=mbps(self.bottleneck_mbps),
            rtts_ms=self.rtts_ms,
            reference_rtt_ms=self.reference_rtt_ms,
            buffer_bdp_fraction=self.buffer_bdp_fraction,
            mss=self.mss,
            access_multiplier=self.access_multiplier,
        )


@dataclass
class FlowHandle:
    """One workload flow plus its endpoint ground truth."""

    index: int
    dst_index: int
    dst_ip: int
    client: Iperf3Client
    server: Iperf3Server

    @property
    def ground_truth_series(self) -> List[Tuple[float, float]]:
        """(t_s, Mbps) measured at the receiving application."""
        return self.server.throughput_series()

    @property
    def stats(self):
        return self.client.stats


class Scenario:
    """A ready-to-run instance of the paper's testbed."""

    def __init__(self, config: Optional[ScenarioConfig] = None,
                 with_perfsonar: bool = True,
                 copy_recorder=None) -> None:
        self.config = config or ScenarioConfig()
        self.sim = Simulator()
        topo_cfg = self.config.topology_config()
        self.topology: ScienceDMZTopology = build_science_dmz(self.sim, topo_cfg)

        monitor_cfg = MonitorConfig(
            bottleneck_rate_bps=topo_cfg.bottleneck_bps,
            buffer_bytes=topo_cfg.buffer_bytes(),
            **self.config.monitor_overrides,
        )
        self.monitor = P4Monitor(monitor_cfg, sim=self.sim)
        # copy_recorder (a MirrorCopy callable) tees the TAP stream before
        # the monitor sees it — used by validation replay round-trips.
        if copy_recorder is None:
            tap_sink = self.monitor.receive_copy
        else:
            def tap_sink(copy, _rec=copy_recorder,
                         _mon=self.monitor.receive_copy):
                _rec(copy)
                _mon(copy)
        self.topology.attach_tap(tap_sink)

        self.perfsonar: Optional[PerfSonarNode] = None
        sink = None
        if with_perfsonar:
            self.perfsonar = PerfSonarNode(
                self.sim, self.topology.internal_perfsonar, mss=topo_cfg.mss
            )
            sink = self.perfsonar.archiver.sink
        self.control_plane = MonitorControlPlane(
            self.sim, self.monitor, report_sink=sink
        )
        if self.perfsonar is not None:
            self.perfsonar.psconfig.attach(self.control_plane)
        self.control_plane.start()

        self.client_stack = TcpHostStack(
            self.sim, self.topology.internal_dtn, default_mss=topo_cfg.mss
        )
        self.server_stacks = [
            TcpHostStack(self.sim, dtn, default_mss=topo_cfg.mss)
            for dtn in self.topology.external_dtns
        ]
        self.flows: List[FlowHandle] = []
        self._ports = iter(range(5201, 6201))
        # Provenance tracer active at construction time (None when off);
        # every netsim/P4/control-plane hook above already bound it, this
        # handle is for export convenience after the run.
        self.trace = provenance.tracer()

    # -- workload construction ---------------------------------------------------

    def add_flow(
        self,
        dst_index: int,
        start_s: float = 0.0,
        duration_s: float = 30.0,
        cc: str = "cubic",
        rate_mbps: Optional[float] = None,
        server_rcv_buf: int = 4 * 1024 * 1024,
    ) -> FlowHandle:
        """An iPerf3 transfer from the internal DTN to external DTN
        ``dst_index``.  ``rate_mbps`` caps the sender (Fig. 12's
        sender-limited case); ``server_rcv_buf`` shrinks the receiver
        window (the receiver-limited case)."""
        port = next(self._ports)
        dst = self.topology.external_dtns[dst_index]
        server = Iperf3Server(
            self.sim, self.server_stacks[dst_index], port=port,
            rcv_buf_bytes=server_rcv_buf,
        )
        client = Iperf3Client(
            self.sim,
            self.client_stack,
            server_ip=dst.ip,
            server_port=port,
            duration_ns=seconds(duration_s),
            rate_bps=mbps(rate_mbps) if rate_mbps is not None else None,
            cc=cc,
            start_ns=seconds(start_s),
        )
        handle = FlowHandle(
            index=len(self.flows), dst_index=dst_index, dst_ip=dst.ip,
            client=client, server=server,
        )
        self.flows.append(handle)
        return handle

    def add_path_loss(self, dst_index: int, loss_rate: float, seed: int = 7,
                      data_only: bool = True) -> LossImpairment:
        """Random loss on external DTN ``dst_index``'s access link — the
        'network is the bottleneck' impairment of §5.4.2."""
        dtn = self.topology.external_dtns[dst_index]
        for link in self.topology.links:
            if link.a.owner is dtn or link.b.owner is dtn:
                imp = LossImpairment(loss_rate, seed=seed, data_only=data_only)
                link.impairments.append(imp)
                return imp
        raise LookupError(f"no access link found for dtn{dst_index + 1}")

    def inject_burst(self, at_s: float, nbytes: int, dst_index: int = 0,
                     pkt_len: int = 1400) -> None:
        """Inject a packet train from the internal DTN toward DTN
        ``dst_index`` — a microburst source (§5.4.1).  The train leaves
        the host back-to-back at NIC rate and slams the bottleneck queue."""
        dst_ip = self.topology.external_dtns[dst_index].ip
        host = self.topology.internal_dtn

        def fire() -> None:
            for i in range(max(1, nbytes // pkt_len)):
                host.send(Packet(
                    src_ip=host.ip, dst_ip=dst_ip,
                    src_port=7000, dst_port=7001,
                    seq=i, proto=PROTO_UDP, payload_len=pkt_len,
                    created_ns=self.sim.now,
                ))

        self.sim.at(seconds(at_s), fire)

    # -- execution ------------------------------------------------------------------

    def run(self, until_s: float) -> None:
        self.sim.run_until(seconds(until_s))

    def dump_trace(self, path: str) -> Optional[dict]:
        """Write the provenance trace (events + spans + trigger dumps)
        as Perfetto JSON; returns the document, or None when tracing was
        off for this scenario."""
        if self.trace is None:
            return None
        from repro.telemetry.traceviz import write_perfetto
        return write_perfetto(path, self.trace)

    # -- result access ----------------------------------------------------------------

    def monitored_flow(self, handle: FlowHandle) -> Optional[TrackedFlow]:
        """The control plane's record of a workload flow (by destination
        IP + port, the tuple the experiment controls)."""
        for flow in self.control_plane.flows.values():
            if flow.dst_ip == handle.dst_ip and flow.dst_port == handle.server.port:
                return flow
        return None

    def monitor_series(self, handle: FlowHandle, kind: MetricKind) -> List[Tuple[float, float]]:
        flow = self.monitored_flow(handle)
        if flow is None:
            return []
        return self.control_plane.series(kind, flow.flow_id)

    def throughput_series_mbps(self, handle: FlowHandle) -> List[Tuple[float, float]]:
        return [(t, v / 1e6) for t, v in
                self.monitor_series(handle, MetricKind.THROUGHPUT)]

    def label(self, handle: FlowHandle) -> str:
        return f"->{int_to_ip(handle.dst_ip)}"


def mean(values) -> float:
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0


def window(series: List[Tuple[float, float]], lo_s: float, hi_s: float) -> List[float]:
    """Values of a (t, v) series with lo <= t < hi."""
    return [v for t, v in series if lo_s <= t < hi_s]
