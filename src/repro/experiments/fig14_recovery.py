"""Fig. 14 / §5.4.3 — recovery speed of the P4 (IAT-based),
throughput-based and RSSI-based blockage systems.

Paper shape: under a 2-second blockage, the P4 system detects and reacts
before the throughput (as seen by a polling controller) even degrades;
the throughput-based system follows; the RSSI-based system — which must
average noisy signal readings — is slowest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netsim.engine import Simulator
from repro.netsim.host import Host
from repro.netsim.units import NS_PER_S, mbps, seconds
from repro.mmwave.channel import BlockageSchedule, MmWaveLink
from repro.mmwave.detectors import IatDetector, RssiDetector, ThroughputDetector
from repro.mmwave.handover import HandoverController
from repro.mmwave.traffic import CbrSender, ThroughputMeter
from repro.viz import timeseries_panel


@dataclass
class DetectorRun:
    system: str
    throughput_mbps: List[Tuple[float, float]]
    detection_latency_ms: Optional[float]     # blockage start -> trigger
    recovery_latency_ms: Optional[float]      # blockage start -> rate restored
    bytes_lost_window: float                  # Mb not delivered during blockage


@dataclass
class Fig14Result:
    blockage_start_s: float
    blockage_duration_s: float
    runs: Dict[str, DetectorRun]

    def ordering_correct(self) -> bool:
        """P4 < throughput-based < RSSI-based detection latency."""
        lat = {
            name: run.detection_latency_ms
            for name, run in self.runs.items()
        }
        if any(v is None for v in lat.values()):
            return False
        return lat["p4-iat"] < lat["throughput"] < lat["rssi"]

    def summary(self) -> str:
        lines = [timeseries_panel(
            {name: run.throughput_mbps for name, run in self.runs.items()},
            f"Throughput under a {self.blockage_duration_s:.0f}s blockage "
            f"at t={self.blockage_start_s:.0f}s", unit="Mbps",
        )]
        for name, run in self.runs.items():
            det = f"{run.detection_latency_ms:.1f}ms" if run.detection_latency_ms is not None else "never"
            rec = f"{run.recovery_latency_ms:.1f}ms" if run.recovery_latency_ms is not None else "never"
            lines.append(
                f"  {name:>10}: detected {det:>10}  recovered {rec:>10}  "
                f"undelivered during blockage {run.bytes_lost_window:.1f} Mb"
            )
        lines.append(f"latency ordering P4 < throughput < RSSI: {self.ordering_correct()}")
        return "\n".join(lines)


def _run_system(
    system: str,
    blockage_start_s: float,
    blockage_duration_s: float,
    duration_s: float,
    link_rate_bps: int,
    stream_rate_bps: int,
    seed: int,
) -> DetectorRun:
    sim = Simulator()
    tx = Host(sim, "mm-tx", "10.9.0.1")
    rx = Host(sim, "mm-rx", "10.9.0.2")
    link = MmWaveLink(sim, tx, rx, rate_bps=link_rate_bps, seed=seed)
    link.schedule(BlockageSchedule([
        (seconds(blockage_start_s), seconds(blockage_duration_s))
    ]))
    controller = HandoverController(sim, link)
    meter = ThroughputMeter(sim, rx)
    CbrSender(sim, tx, rx.ip, rate_bps=stream_rate_bps, payload_len=8948,
              stop_ns=seconds(duration_s))

    if system == "p4-iat":
        detector = IatDetector(sim, rx, controller)
    elif system == "throughput":
        detector = ThroughputDetector(
            sim, rx, controller, expected_rate_bps=stream_rate_bps
        )
    elif system == "rssi":
        detector = RssiDetector(sim, link, controller)
    else:
        raise ValueError(f"unknown system {system!r}")

    sim.run_until(seconds(duration_s))

    start_ns = seconds(blockage_start_s)
    detection_ms: Optional[float] = None
    if detector.triggered_at_ns is not None:
        detection_ms = (detector.triggered_at_ns - start_ns) / 1e6
    recovery_ms: Optional[float] = None
    if controller.records:
        recovery_ms = (controller.records[0].completed_ns - start_ns) / 1e6

    # Megabits NOT delivered during the blockage window relative to the
    # nominal stream rate (the area above the throughput curve).
    window_s = blockage_duration_s
    delivered = sum(
        bps * (meter.interval_ns / NS_PER_S)
        for t_ns, bps in meter.intervals
        if start_ns <= t_ns <= start_ns + seconds(window_s)
    )
    nominal = stream_rate_bps * window_s
    lost_mb = max(0.0, (nominal - delivered) / 1e6)

    return DetectorRun(
        system=system,
        throughput_mbps=meter.throughput_series_mbps(),
        detection_latency_ms=detection_ms,
        recovery_latency_ms=recovery_ms,
        bytes_lost_window=lost_mb,
    )


def run_fig14(
    duration_s: float = 12.0,
    blockage_start_s: float = 7.0,
    blockage_duration_s: float = 2.0,
    link_rate_mbps: float = 1000.0,
    stream_rate_mbps: float = 500.0,
    seed: int = 3,
) -> Fig14Result:
    runs = {
        system: _run_system(
            system, blockage_start_s, blockage_duration_s, duration_s,
            mbps(link_rate_mbps), mbps(stream_rate_mbps), seed,
        )
        for system in ("p4-iat", "throughput", "rssi")
    }
    return Fig14Result(
        blockage_start_s=blockage_start_s,
        blockage_duration_s=blockage_duration_s,
        runs=runs,
    )
