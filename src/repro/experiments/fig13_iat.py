"""Fig. 13 / §5.4.3 — packet inter-arrival times under mmWave LOS
blockage.

Paper shape: with no blockage the IAT stays flat at the packet spacing;
with a blockage at t=7 s the IAT jumps by multiple orders of magnitude
for its duration — the signal the P4 detector keys on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.netsim.engine import Simulator
from repro.netsim.host import Host
from repro.netsim.units import NS_PER_S, mbps, seconds
from repro.mmwave.channel import BlockageSchedule, MmWaveLink
from repro.mmwave.traffic import CbrSender, ThroughputMeter
from repro.viz import timeseries_panel


@dataclass
class Fig13Result:
    blockage_start_s: float
    blockage_duration_s: float
    iat_no_blockage_us: List[Tuple[float, float]]   # (t_s, IAT µs)
    iat_blockage_us: List[Tuple[float, float]]

    def baseline_iat_us(self) -> float:
        vals = [v for _, v in self.iat_no_blockage_us]
        return sum(vals) / len(vals) if vals else 0.0

    def peak_iat_during_blockage_us(self) -> float:
        lo = self.blockage_start_s
        hi = self.blockage_start_s + self.blockage_duration_s + 0.5
        vals = [v for t, v in self.iat_blockage_us if lo <= t <= hi]
        return max(vals) if vals else 0.0

    def inflation_factor(self) -> float:
        base = self.baseline_iat_us()
        return self.peak_iat_during_blockage_us() / base if base else 0.0

    def summary(self) -> str:
        return "\n".join([
            timeseries_panel(
                {"no blockage": self.iat_no_blockage_us,
                 "blockage@t=7s": self.iat_blockage_us},
                "Packet inter-arrival time", unit="µs",
            ),
            f"baseline IAT: {self.baseline_iat_us():.1f} µs; "
            f"peak during blockage: {self.peak_iat_during_blockage_us():.1f} µs; "
            f"inflation ×{self.inflation_factor():.0f}",
        ])


def _run_once(
    blockage: Optional[Tuple[float, float]],
    link_rate_bps: int,
    stream_rate_bps: int,
    duration_s: float,
    seed: int,
) -> List[Tuple[float, float]]:
    sim = Simulator()
    tx = Host(sim, "mm-tx", "10.9.0.1")
    rx = Host(sim, "mm-rx", "10.9.0.2")
    link = MmWaveLink(sim, tx, rx, rate_bps=link_rate_bps, seed=seed)
    if blockage is not None:
        start_s, dur_s = blockage
        link.schedule(BlockageSchedule([(seconds(start_s), seconds(dur_s))]))
    meter = ThroughputMeter(sim, rx)
    CbrSender(sim, tx, rx.ip, rate_bps=stream_rate_bps, payload_len=8948,
              stop_ns=seconds(duration_s))
    sim.run_until(seconds(duration_s))
    return [(t / NS_PER_S, iat / 1e3) for t, iat in meter.inter_arrival_times()]


def run_fig13(
    duration_s: float = 12.0,
    blockage_start_s: float = 7.0,
    blockage_duration_s: float = 2.0,
    link_rate_mbps: float = 1000.0,
    stream_rate_mbps: float = 500.0,
    seed: int = 3,
) -> Fig13Result:
    link_rate = mbps(link_rate_mbps)
    stream_rate = mbps(stream_rate_mbps)
    return Fig13Result(
        blockage_start_s=blockage_start_s,
        blockage_duration_s=blockage_duration_s,
        iat_no_blockage_us=_run_once(None, link_rate, stream_rate, duration_s, seed),
        iat_blockage_us=_run_once(
            (blockage_start_s, blockage_duration_s),
            link_rate, stream_rate, duration_s, seed,
        ),
    )
