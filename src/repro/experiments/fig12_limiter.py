"""Fig. 12 / §5.4.2 — is a connection limited by the network or by the
sender/receiver?

Paper setup (10 Gbps bottleneck): DTN1's path gets 0.01 % random loss
(network-limited, fluctuating throughput); DTN2's receiver shrinks its
TCP buffer (steady ≈250 Mbps, endpoint-limited); DTN3's sender caps its
rate at 500 Mbps (steady, endpoint-limited).

Scaled version: the same *fractions* of the bottleneck — receiver window
sized for 2.5 % of the link, sender paced at 5 % — and a loss rate chosen
to preserve losses-per-RTT at the scaled packet rate (the paper's 0.01 %
at 10 Gbps/1500 B ≈ several losses per RTT; see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import MetricKind
from repro.core.reports import LimiterVerdict
from repro.experiments.common import FlowHandle, Scenario, ScenarioConfig, mean, window
from repro.netsim.units import mbps
from repro.viz import timeseries_panel


@dataclass
class Fig12Result:
    scenario: Scenario
    handles: List[FlowHandle]
    duration_s: float
    throughput_mbps: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    verdicts: Dict[str, LimiterVerdict] = field(default_factory=dict)
    expectations: Dict[str, LimiterVerdict] = field(default_factory=dict)

    def settled_throughputs(self) -> Dict[str, float]:
        lo, hi = self.duration_s * 0.4, self.duration_s
        return {
            label: mean(window(series, lo, hi))
            for label, series in self.throughput_mbps.items()
        }

    def throughput_cv(self, label: str) -> float:
        lo, hi = self.duration_s * 0.4, self.duration_s
        vals = window(self.throughput_mbps[label], lo, hi)
        if len(vals) < 2:
            return 0.0
        m = sum(vals) / len(vals)
        if m == 0:
            return 0.0
        var = sum((v - m) ** 2 for v in vals) / len(vals)
        return var ** 0.5 / m

    def all_correct(self) -> bool:
        return all(
            self.verdicts.get(label) is expected
            for label, expected in self.expectations.items()
        )

    def summary(self) -> str:
        lines = [timeseries_panel(self.throughput_mbps, "Per-flow throughput", unit="Mbps")]
        settled = self.settled_throughputs()
        for label in self.throughput_mbps:
            lines.append(
                f"  {label}: verdict={self.verdicts.get(label, LimiterVerdict.UNKNOWN).value:>8} "
                f"(expected {self.expectations[label].value:>8})  "
                f"settled {settled[label]:.1f} Mbps  cv {self.throughput_cv(label):.2f}"
            )
        lines.append(f"all verdicts correct: {self.all_correct()}")
        return "\n".join(lines)


def run_fig12(
    duration_s: float = 40.0,
    loss_rate: Optional[float] = None,
    receiver_fraction: float = 0.025,   # paper: 250 Mbps of 10 Gbps
    sender_fraction: float = 0.05,      # paper: 500 Mbps of 10 Gbps
    loss_target_fraction: float = 0.35,
    config: Optional[ScenarioConfig] = None,
) -> Fig12Result:
    cfg = config or ScenarioConfig()
    scenario = Scenario(cfg)
    bottleneck_bps = mbps(cfg.bottleneck_mbps)

    # Flow 1: the network is the bottleneck (random loss on DTN1's path).
    # As in the paper's setup, the loss caps this flow *below* the link
    # rate, so the link never saturates and the endpoint-limited flows see
    # no congestion drops.  When not given explicitly, the rate is derived
    # from the Mathis relation  thr ≈ 1.2*MSS/(RTT*sqrt(p))  to target
    # ``loss_target_fraction`` of the bottleneck (this reproduces the
    # paper's 0.01 % at its 1500 B / 10 Gbps operating point).
    if loss_rate is None:
        rtt_s = cfg.rtts_ms[0] / 1e3
        target = loss_target_fraction * bottleneck_bps
        loss_rate = min(0.05, max(1e-4, (1.2 * cfg.mss * 8 / (rtt_s * target)) ** 2))
    scenario.add_path_loss(0, loss_rate)
    f1 = scenario.add_flow(0, duration_s=duration_s)

    # Flow 2: the receiver is the bottleneck (small TCP buffer → rwnd cap).
    # rwnd = target_rate * RTT.
    rtt_s = cfg.rtts_ms[1] / 1e3
    rcv_buf = max(2048, int(receiver_fraction * bottleneck_bps * rtt_s / 8))
    f2 = scenario.add_flow(1, duration_s=duration_s, server_rcv_buf=rcv_buf)

    # Flow 3: the sender is the bottleneck (application pacing).
    f3 = scenario.add_flow(
        2, duration_s=duration_s,
        rate_mbps=sender_fraction * cfg.bottleneck_mbps,
    )

    scenario.run(duration_s + 2.0)

    handles = [f1, f2, f3]
    result = Fig12Result(scenario=scenario, handles=handles, duration_s=duration_s)
    expected = [
        LimiterVerdict.NETWORK_LIMITED,
        LimiterVerdict.RECEIVER_LIMITED,
        LimiterVerdict.SENDER_LIMITED,
    ]
    for handle, exp in zip(handles, expected):
        label = scenario.label(handle)
        result.throughput_mbps[label] = scenario.throughput_series_mbps(handle)
        result.expectations[label] = exp
        tracked = scenario.monitored_flow(handle)
        if tracked is not None:
            result.verdicts[label] = tracked.verdict
    return result
