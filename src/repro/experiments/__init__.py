"""Runnable reproductions of the paper's evaluation (§5).

One module per table/figure:

- :mod:`repro.experiments.fig9_perflow` — per-flow throughput / RTT /
  queue occupancy / packet loss as a third transfer joins (Fig. 9);
- :mod:`repro.experiments.fig10_fairness` — link utilisation and Jain's
  fairness over the same run (Fig. 10);
- :mod:`repro.experiments.fig11_microburst` — small (BDP/4) buffer and
  microburst impact (Fig. 11 / §5.4.1);
- :mod:`repro.experiments.fig12_limiter` — network- vs sender/receiver-
  limited classification (Fig. 12 / §5.4.2);
- :mod:`repro.experiments.fig13_iat` — packet IAT under mmWave LOS
  blockage (Fig. 13 / §5.4.3);
- :mod:`repro.experiments.fig14_recovery` — recovery speed of the P4,
  throughput-based and RSSI-based systems (Fig. 14);
- :mod:`repro.experiments.table1_comparison` — the regular-vs-P4
  capability matrix (Table 1);
- :mod:`repro.experiments.ablations` — design-choice ablations
  (DESIGN.md §5).

Every experiment runs at a scaled bottleneck rate (default 100 Mb/s, see
DESIGN.md §2) with the paper's ratios preserved.
"""

from repro.experiments.common import Scenario, ScenarioConfig, FlowHandle

__all__ = ["Scenario", "ScenarioConfig", "FlowHandle"]
