"""Table 1 — regular perfSONAR vs the P4-enhanced deployment.

One simulation carries: a real DTN transfer (CUBIC, network-limited), a
receiver-limited DTN transfer, and an injected microburst.  A regular
perfSONAR node runs its periodic active tests (iperf3 + ping) against a
remote perfSONAR node, archiving through perfSONAR's default aggregating
pipeline; the P4 system watches the same interval passively.

Each Table 1 row is then *measured* from the two archives:

| row | regular perfSONAR | P4-perfSONAR |
|---|---|---|
| measurement type      | active (injects traffic)  | passive (zero injected) |
| measurement source    | its own test flows        | the real DTN flows |
| granularity           | 1 aggregate per test      | per-second per-flow samples |
| visibility            | only while a test runs    | whole transfer lifetime |
| microburst detection  | none                      | ns-resolution events |
| endpoint-limitation   | none                      | §4.4 verdicts |
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import MetricKind
from repro.core.reports import LimiterVerdict
from repro.experiments.common import Scenario, ScenarioConfig
from repro.perfsonar.node import PerfSonarNode
from repro.perfsonar.pscheduler import TestSpec
from repro.viz import render_table


@dataclass
class Table1Result:
    scenario: Scenario
    # Regular perfSONAR facts.
    active_tests_run: int
    active_bytes_injected: int
    regular_throughput_docs: List[dict]
    regular_rtt_docs: List[dict]
    regular_dtn_flow_docs: int          # docs about the real DTN flows (expect 0)
    # P4 facts.
    p4_bytes_injected: int              # expect 0 (passive)
    p4_flow_samples: int
    p4_samples_per_flow_second: float
    p4_microbursts: int
    p4_endpoint_verdicts: Dict[str, str] = field(default_factory=dict)
    coverage_regular_s: float = 0.0     # seconds of the run an active test covered
    coverage_p4_s: float = 0.0

    def rows(self) -> List[Tuple[str, str, str]]:
        agg_vals = "avg only" if all(
            "value" in d and "intervals" not in d for d in self.regular_throughput_docs
        ) else "samples"
        return [
            ("Measurements type",
             f"active ({self.active_tests_run} tests, "
             f"{self.active_bytes_injected / 1e6:.1f} MB injected)",
             f"passive ({self.p4_bytes_injected} bytes injected)"),
            ("Measurements source",
             f"injected test traffic ({self.regular_dtn_flow_docs} docs about real flows)",
             f"real traffic ({self.p4_flow_samples} per-flow samples)"),
            ("Granularity",
             f"per-test aggregate ({agg_vals})",
             f"{self.p4_samples_per_flow_second:.1f} samples/flow/s"),
            ("Visibility",
             f"{self.coverage_regular_s:.0f}s of run covered by tests",
             f"{self.coverage_p4_s:.0f}s continuous"),
            ("Microburst detection",
             "not supported (0 events)",
             f"{self.p4_microbursts} events, ns resolution"),
            ("Endpoint-limitation detection",
             "not supported",
             f"verdicts: {self.p4_endpoint_verdicts}"),
        ]

    def summary(self) -> str:
        return render_table(
            ["Feature", "Regular perfSONAR", "P4-perfSONAR"], self.rows()
        )

    # Checks used by the benchmark harness.
    def p4_is_passive(self) -> bool:
        return self.p4_bytes_injected == 0

    def regular_blind_to_real_flows(self) -> bool:
        return self.regular_dtn_flow_docs == 0

    def p4_detects_microbursts(self) -> bool:
        return self.p4_microbursts > 0

    def p4_detects_endpoint_limits(self) -> bool:
        return LimiterVerdict.RECEIVER_LIMITED.value in self.p4_endpoint_verdicts.values()


def run_table1(
    duration_s: float = 45.0,
    test_repeat_s: float = 20.0,
    test_duration_s: float = 4.0,
    config: Optional[ScenarioConfig] = None,
) -> Table1Result:
    scenario = Scenario(config or ScenarioConfig())
    assert scenario.perfsonar is not None
    topo = scenario.topology

    # Remote perfSONAR node (regular mesh peer) in external network 1.
    remote = PerfSonarNode(
        scenario.sim, topo.external_perfsonar[0],
        mss=scenario.config.topology_config().mss,
    )
    local = scenario.perfsonar
    local.register_peer(remote)

    # Regular perfSONAR schedule: periodic throughput + RTT tests.
    local.schedule_test(TestSpec(
        "throughput", dst_ip=remote.host.ip,
        repeat_s=test_repeat_s, duration_s=test_duration_s, start_s=2.0,
    ))
    local.schedule_test(TestSpec(
        "rtt", dst_ip=remote.host.ip, repeat_s=test_repeat_s, start_s=1.0,
    ))

    # The real workload the regular node cannot see: one network-limited
    # and one receiver-limited DTN transfer, plus a microburst.
    scenario.add_flow(0, start_s=0.0, duration_s=duration_s)
    scenario.add_flow(1, start_s=0.0, duration_s=duration_s,
                      server_rcv_buf=32 * 1024)
    buffer_bytes = scenario.config.topology_config().buffer_bytes()
    scenario.inject_burst(duration_s / 2, nbytes=4 * buffer_bytes)

    scenario.run(duration_s + 3.0)

    cp = scenario.control_plane
    throughput_docs = local.archived("throughput")
    rtt_docs = local.archived("rtt")
    # Does the regular archive contain anything about the DTN flows?
    dtn_ips = {topo.external_dtns[0].ip, topo.external_dtns[1].ip}
    dtn_docs = [
        d for kind in ("throughput", "rtt", "loss")
        for d in local.archived(kind)
        if d.get("destination_ip") in dtn_ips
    ]
    active_bytes = sum(d.get("bytes", 0) for d in throughput_docs)
    tests_run = local.pscheduler.tests_run

    samples = cp.flow_samples[MetricKind.THROUGHPUT]
    n_flows = max(1, len(cp.flows))
    verdicts = {}
    for flow in cp.flows.values():
        if flow.verdict.is_endpoint:
            verdicts[f"{flow.flow_id:#x}"] = flow.verdict.value

    return Table1Result(
        scenario=scenario,
        active_tests_run=tests_run,
        active_bytes_injected=active_bytes,
        regular_throughput_docs=throughput_docs,
        regular_rtt_docs=rtt_docs,
        regular_dtn_flow_docs=len(dtn_docs),
        p4_bytes_injected=0,  # the monitor has no transmit path at all
        p4_flow_samples=len(samples),
        p4_samples_per_flow_second=len(samples) / (duration_s * n_flows),
        p4_microbursts=len(cp.microbursts),
        p4_endpoint_verdicts=verdicts,
        coverage_regular_s=tests_run / 2 * test_duration_s,
        coverage_p4_s=duration_s,
    )
