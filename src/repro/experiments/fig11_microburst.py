"""Fig. 11 / §5.4.1 — detecting small-sized buffers via microbursts.

Paper setup: flows at the reference 100 ms RTT; the guideline buffer is
1 BDP but the switch is configured with **BDP/4**.  A microburst — here,
as in §5.2, the slow-start burst of a transfer joining the network —
bloats the shallow queue.  The system reports the burst with nanosecond
start/duration, and the collateral matches the paper's: the packet-loss
percentage escalates for the two pre-existing flows (one above ~0.05 %,
one above ~0.15 % in the paper's units) and their throughput needs tens
of seconds to recover.

An optional line-rate UDP packet train (``inject_burst_buffers``) adds a
pure microburst with no congestion-control reaction, used by the
sampling-vs-data-plane ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import MetricKind
from repro.core.reports import MicroburstEvent
from repro.experiments.common import FlowHandle, Scenario, ScenarioConfig, mean, window
from repro.viz import timeseries_panel


@dataclass
class Fig11Result:
    scenario: Scenario
    handles: List[FlowHandle]
    burst_s: float                      # when the joining flow's burst hits
    duration_s: float
    microbursts: List[MicroburstEvent]
    throughput_mbps: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    loss_pct: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    queue_occupancy_pct: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def bursts_near_injection(self, slack_s: float = 4.0) -> List[MicroburstEvent]:
        lo = (self.burst_s - slack_s) * 1e9
        hi = (self.burst_s + slack_s) * 1e9
        return [b for b in self.microbursts if lo <= b.start_ns <= hi]

    def loss_spikes(self) -> List[float]:
        """Max loss %% of the two pre-existing flows after the burst."""
        lo, hi = self.burst_s, self.burst_s + 6.0
        labels = list(self.loss_pct)[:2]
        return [max(window(self.loss_pct[l], lo, hi), default=0.0) for l in labels]

    def recovery_times_s(self, fraction: float = 0.75) -> List[float]:
        """Per pre-existing flow: time from the burst until its
        throughput is back above ``fraction`` of its pre-burst mean —
        the paper's ≈25 s observation."""
        out = []
        for label in list(self.throughput_mbps)[:2]:
            series = self.throughput_mbps[label]
            pre = mean(window(series, self.burst_s - 6.0, self.burst_s - 1.0))
            if pre <= 0:
                out.append(0.0)
                continue
            recovered = self.duration_s - self.burst_s
            t = self.burst_s + 1.0
            while t + 2.0 <= self.duration_s:
                if mean(window(series, t, t + 2.0)) >= fraction * pre:
                    recovered = t - self.burst_s
                    break
                t += 1.0
            out.append(recovered)
        return out

    def summary(self) -> str:
        near = self.bursts_near_injection()
        lines = [
            timeseries_panel(self.throughput_mbps,
                             "Per-flow throughput (BDP/4 buffer)", unit="Mbps"),
            timeseries_panel(self.loss_pct, "Per-flow packet loss", unit="%"),
            timeseries_panel(self.queue_occupancy_pct, "Queue occupancy", unit="%"),
            f"microbursts detected: {len(self.microbursts)} total, "
            f"{len(near)} around the join burst",
        ]
        for b in near[:3]:
            lines.append(
                f"  burst @ {b.start_ns / 1e9:.6f}s duration {b.duration_ns / 1e6:.3f}ms "
                f"peak occupancy {100 * b.peak_occupancy:.0f}% ({b.packets} pkts)"
            )
        lines.append(
            "loss spikes on pre-existing flows: "
            f"{[round(v, 3) for v in self.loss_spikes()]} %"
        )
        lines.append(
            "throughput recovery times: "
            f"{[round(v, 1) for v in self.recovery_times_s()]} s"
        )
        return "\n".join(lines)


def run_fig11(
    duration_s: float = 50.0,
    join_s: float = 18.0,
    inject_burst_buffers: float = 0.0,
    config: Optional[ScenarioConfig] = None,
) -> Fig11Result:
    """Two settled transfers + one joining at ``join_s`` over a BDP/4
    buffer, all paths at the reference 100 ms RTT (§5.4.1)."""
    cfg = config or ScenarioConfig(
        rtts_ms=(100.0, 100.0, 100.0),
        buffer_bdp_fraction=0.25,
    )
    scenario = Scenario(cfg)
    handles = [
        scenario.add_flow(0, start_s=0.0, duration_s=duration_s),
        scenario.add_flow(1, start_s=1.0, duration_s=duration_s),
        scenario.add_flow(2, start_s=join_s, duration_s=duration_s - join_s),
    ]
    if inject_burst_buffers > 0:
        buffer_bytes = scenario.config.topology_config().buffer_bytes()
        scenario.inject_burst(join_s, nbytes=int(inject_burst_buffers * buffer_bytes))
    scenario.run(duration_s + 2.0)

    result = Fig11Result(
        scenario=scenario,
        handles=handles,
        burst_s=join_s,
        duration_s=duration_s,
        microbursts=list(scenario.control_plane.microbursts),
    )
    for handle in handles:
        label = scenario.label(handle)
        result.throughput_mbps[label] = scenario.throughput_series_mbps(handle)
        result.loss_pct[label] = scenario.monitor_series(handle, MetricKind.PACKET_LOSS)
        result.queue_occupancy_pct[label] = scenario.monitor_series(
            handle, MetricKind.QUEUE_OCCUPANCY
        )
    return result
