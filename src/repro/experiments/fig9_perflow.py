"""Fig. 9 — per-flow measurements as a third transfer joins two existing
ones (§5.2).

The paper's observations, reproduced here at the scaled rate:

1. before the join, the two existing flows converge to approximate
   parity (≈ half the bottleneck each — the paper's ≈5 Gbps per flow);
2. when the third flow joins, its slow-start burst fills the queue — a
   surge in queue occupancy;
3. the burst overruns the buffer — a packet-loss spike around the join;
4. afterwards all three flows converge toward a new fair share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import MetricKind
from repro.experiments.common import FlowHandle, Scenario, ScenarioConfig, mean, window
from repro.viz import timeseries_panel


@dataclass
class Fig9Result:
    scenario: Scenario
    handles: List[FlowHandle]
    join_s: float
    duration_s: float

    # (label -> series) per metric, monitor-reported.
    throughput_mbps: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    rtt_ms: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    queue_occupancy_pct: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    loss_pct: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def pre_join_throughputs(self) -> List[float]:
        """Mean per-flow throughput over the settled window before the
        join (for the parity check)."""
        lo, hi = self.join_s * 0.5, self.join_s
        return [
            mean(window(series, lo, hi))
            for label, series in self.throughput_mbps.items()
            if window(series, lo, hi)
        ]

    def post_join_throughputs(self) -> List[float]:
        lo, hi = self.duration_s * 0.75, self.duration_s
        return [
            mean(window(series, lo, hi))
            for series in self.throughput_mbps.values()
            if window(series, lo, hi)
        ]

    def join_loss_spike(self) -> float:
        """Max packet-loss percentage across flows around the join."""
        lo, hi = self.join_s, self.join_s + 5.0
        spikes = [max(window(s, lo, hi), default=0.0) for s in self.loss_pct.values()]
        return max(spikes, default=0.0)

    def join_queue_surge(self) -> float:
        lo, hi = self.join_s, self.join_s + 5.0
        return max(
            (max(window(s, lo, hi), default=0.0) for s in self.queue_occupancy_pct.values()),
            default=0.0,
        )

    def summary(self) -> str:
        parts = [
            timeseries_panel(self.throughput_mbps, "Per-flow throughput", unit="Mbps"),
            timeseries_panel(self.rtt_ms, "Per-flow RTT", unit="ms"),
            timeseries_panel(self.queue_occupancy_pct, "Queue occupancy", unit="%"),
            timeseries_panel(self.loss_pct, "Per-flow packet loss", unit="%"),
            f"pre-join fair shares (Mbps): "
            f"{[round(v, 1) for v in self.pre_join_throughputs()]}",
            f"post-join shares (Mbps): "
            f"{[round(v, 1) for v in self.post_join_throughputs()]}",
            f"loss spike at join: {self.join_loss_spike():.2f}%  "
            f"queue surge at join: {self.join_queue_surge():.1f}%",
        ]
        return "\n".join(parts)


def run_fig9(
    duration_s: float = 40.0,
    join_s: float = 15.0,
    config: Optional[ScenarioConfig] = None,
) -> Fig9Result:
    """Two flows from t=0 (to DTN1/DTN2), a third (to DTN3) joining at
    ``join_s``; monitor reporting interval 1 s, as in §5.1."""
    scenario = Scenario(config or ScenarioConfig())
    handles = [
        scenario.add_flow(0, start_s=0.0, duration_s=duration_s),
        scenario.add_flow(1, start_s=0.0, duration_s=duration_s),
        scenario.add_flow(2, start_s=join_s, duration_s=duration_s - join_s),
    ]
    scenario.run(duration_s + 2.0)

    result = Fig9Result(
        scenario=scenario, handles=handles, join_s=join_s, duration_s=duration_s
    )
    for handle in handles:
        label = scenario.label(handle)
        result.throughput_mbps[label] = scenario.throughput_series_mbps(handle)
        result.rtt_ms[label] = scenario.monitor_series(handle, MetricKind.RTT)
        result.queue_occupancy_pct[label] = scenario.monitor_series(
            handle, MetricKind.QUEUE_OCCUPANCY
        )
        result.loss_pct[label] = scenario.monitor_series(handle, MetricKind.PACKET_LOSS)
    return result
