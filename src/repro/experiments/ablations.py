"""Ablations of the design choices DESIGN.md §5 calls out.

1. Count-min-sketch geometry vs long-flow detection error.
2. eACK signature-table size vs RTT sample hit rate.
3. Control-plane sampling vs data-plane microburst detection (§4.2's
   argument for putting the detector in the data plane).
4. Alert-triggered rate boost: samples captured during an anomaly.
5. Congestion-control signatures seen by the passive monitor (extension:
   the related-work P4CCI direction — CCAs are distinguishable from the
   wire metrics the monitor already collects).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import MetricKind
from repro.experiments.common import Scenario, ScenarioConfig, window
from repro.netsim.packet import FiveTuple
from repro.p4.sketch import CountMinSketch
from repro.viz import render_table


# -- 1. CMS geometry ------------------------------------------------------------


@dataclass
class CmsAblationRow:
    width: int
    depth: int
    conservative: bool
    mean_overestimate: float
    false_long_flows: int
    memory_cells: int


def ablate_cms(
    widths: Tuple[int, ...] = (256, 1024, 4096),
    depths: Tuple[int, ...] = (1, 3),
    n_flows: int = 5000,
    long_flow_bytes: int = 100_000,
    seed: int = 11,
) -> List[CmsAblationRow]:
    """Synthetic heavy-tailed traffic: a few elephants over many mice.
    Measures the CMS overestimate and how many mice it would wrongly
    promote to 'long flow' (wasting the 2048 register slots)."""
    rng = random.Random(seed)
    flows: List[Tuple[FiveTuple, int]] = []
    for i in range(n_flows):
        ft = FiveTuple(
            src_ip=0x0A000000 + rng.randrange(1 << 16),
            dst_ip=0x0A010000 + rng.randrange(1 << 16),
            src_port=rng.randrange(1024, 65535),
            dst_port=5201,
        )
        # Pareto-ish sizes: 1% elephants far above the threshold.
        size = int(rng.paretovariate(1.2) * 1000)
        flows.append((ft, size))

    rows: List[CmsAblationRow] = []
    for conservative in (False, True):
        for depth in depths:
            for width in widths:
                cms = CountMinSketch(width=width, depth=depth, conservative=conservative)
                for ft, size in flows:
                    cms.update_tuple(ft, size)
                over, false_long = [], 0
                for ft, size in flows:
                    est = cms.query_tuple(ft)
                    over.append(est - size)
                    if est >= long_flow_bytes and size < long_flow_bytes:
                        false_long += 1
                rows.append(CmsAblationRow(
                    width=width, depth=depth, conservative=conservative,
                    mean_overestimate=sum(over) / len(over),
                    false_long_flows=false_long,
                    memory_cells=cms.memory_cells(),
                ))
    return rows


def cms_table(rows: List[CmsAblationRow]) -> str:
    return render_table(
        ["width", "depth", "conservative", "mean overestimate (B)",
         "false long flows", "cells"],
        [(r.width, r.depth, r.conservative, f"{r.mean_overestimate:.0f}",
          r.false_long_flows, r.memory_cells) for r in rows],
    )


# -- 2. eACK table size ------------------------------------------------------------


@dataclass
class EackAblationRow:
    table_size: int
    rtt_matches: int
    rtt_misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.rtt_matches + self.rtt_misses
        return self.rtt_matches / total if total else 0.0


def ablate_eack_size(
    sizes: Tuple[int, ...] = (256, 4096, 65536),
    duration_s: float = 10.0,
) -> List[EackAblationRow]:
    """Same 2-flow workload, varying the signature table; small tables
    lose RTT samples to eviction/collision."""
    rows = []
    for size in sizes:
        cfg = ScenarioConfig(
            bottleneck_mbps=50.0,
            monitor_overrides={"eack_table_size": size},
        )
        scenario = Scenario(cfg, with_perfsonar=False)
        scenario.add_flow(0, duration_s=duration_s)
        scenario.add_flow(1, duration_s=duration_s)
        scenario.run(duration_s + 1.0)
        stage = scenario.monitor.rtt_loss
        rows.append(EackAblationRow(
            table_size=size,
            rtt_matches=stage.rtt_matches,
            rtt_misses=stage.rtt_misses,
            evictions=stage.stash_evictions,
        ))
    return rows


def eack_table(rows: List[EackAblationRow]) -> str:
    return render_table(
        ["table size", "RTT matches", "misses", "evictions", "hit rate"],
        [(r.table_size, r.rtt_matches, r.rtt_misses, r.evictions,
          f"{100 * r.hit_rate:.1f}%") for r in rows],
    )


# -- 3. sampling vs data-plane microburst detection --------------------------------


@dataclass
class SamplingAblationResult:
    dataplane_bursts: int
    sampled_bursts_by_interval: Dict[float, int]

    def table(self) -> str:
        rows = [("data plane (per packet)", self.dataplane_bursts)]
        for interval, count in sorted(self.sampled_bursts_by_interval.items()):
            rows.append((f"control-plane sampling @ {interval:.2f}s", count))
        return render_table(["detector", "bursts seen"], rows)


def ablate_sampling_vs_dataplane(
    sample_intervals_s: Tuple[float, ...] = (1.0, 0.1, 0.01),
    n_bursts: int = 5,
    duration_s: float = 24.0,
) -> SamplingAblationResult:
    """Inject short line-rate bursts into an otherwise idle bottleneck.
    The data plane sees each burst per-packet; a control plane that only
    samples queue occupancy every t_Q seconds misses bursts that start
    and drain between samples (§4.2)."""
    cfg = ScenarioConfig(
        bottleneck_mbps=100.0,
        buffer_bdp_fraction=0.25,
        # Low background so bursts drain quickly (microseconds-scale at
        # paper rates; milliseconds here).
        monitor_overrides={"long_flow_bytes": 10_000},
    )
    scenario = Scenario(cfg, with_perfsonar=False)
    # A light paced flow keeps the flow table populated so queue samples
    # exist, without congesting the link.
    scenario.add_flow(0, duration_s=duration_s, rate_mbps=5.0)
    buffer_bytes = scenario.config.topology_config().buffer_bytes()
    burst_times = [4.0 + i * (duration_s - 8.0) / n_bursts for i in range(n_bursts)]
    for t in burst_times:
        scenario.inject_burst(t, nbytes=int(1.5 * buffer_bytes))
    scenario.run(duration_s)

    dataplane = len(scenario.control_plane.microbursts)

    # Reconstruct what sampling alone would have seen: per-flow queue
    # occupancy samples crossing the burst threshold.
    sampled: Dict[float, int] = {}
    for interval in sample_intervals_s:
        # Resample the recorded per-packet queue delays at the interval.
        events = _sampled_burst_count(scenario, interval, burst_times)
        sampled[interval] = events
    return SamplingAblationResult(
        dataplane_bursts=dataplane, sampled_bursts_by_interval=sampled
    )


def _sampled_burst_count(scenario: Scenario, interval_s: float,
                         burst_times: List[float]) -> int:
    """How many injected bursts a sampling observer catches: a burst
    counts as seen if any sample instant falls inside a high-occupancy
    excursion recorded by the data plane."""
    on_ns = scenario.monitor.microburst.on_threshold_ns
    excursions = [
        (b.start_ns, b.start_ns + b.duration_ns)
        for b in scenario.control_plane.microbursts
    ]
    seen = set()
    t = 0.0
    duration = scenario.sim.now / 1e9
    while t <= duration:
        ts = t * 1e9
        for i, (lo, hi) in enumerate(excursions):
            if lo <= ts <= hi:
                seen.add(i)
        t += interval_s
    return len(seen)


# -- 4. alert-triggered boost ----------------------------------------------------


@dataclass
class BoostAblationResult:
    samples_with_boost: int
    samples_without_boost: int
    alerts_raised: int

    def table(self) -> str:
        return render_table(
            ["configuration", "queue samples in anomaly window"],
            [("alert boost ON (10/s over 30%)", self.samples_with_boost),
             ("alert boost OFF (1/s)", self.samples_without_boost)],
        )


# -- 6. INT baseline vs the passive TAP ---------------------------------------


@dataclass
class IntComparisonResult:
    """Passive TAP vs in-band telemetry over the same workload."""

    tap_goodput_bps: float
    int_goodput_bps: float
    tap_wire_overhead_bytes: int      # always 0: TAP copies ride dark fibre
    int_wire_overhead_bytes: int
    tap_saw_queue: bool               # monitor measured the congested queue
    int_saw_queue: bool               # collector saw queue depth per hop
    int_postcards: int

    @property
    def goodput_penalty_pct(self) -> float:
        if self.tap_goodput_bps <= 0:
            return 0.0
        return 100.0 * (1 - self.int_goodput_bps / self.tap_goodput_bps)

    def table(self) -> str:
        return render_table(
            ["system", "goodput (Mbps)", "wire overhead (kB)", "queue visibility"],
            [
                ("passive TAP (paper)", f"{self.tap_goodput_bps / 1e6:.2f}",
                 f"{self.tap_wire_overhead_bytes / 1e3:.1f}",
                 "yes" if self.tap_saw_queue else "no"),
                ("INT (related work)", f"{self.int_goodput_bps / 1e6:.2f}",
                 f"{self.int_wire_overhead_bytes / 1e3:.1f}",
                 "yes" if self.int_saw_queue else "no"),
            ],
        )


def ablate_int_overhead(duration_s: float = 10.0,
                        bottleneck_mbps: float = 30.0,
                        mss: int = 1448) -> IntComparisonResult:
    """Same saturating transfer over (a) legacy switches + TAP monitor and
    (b) INT transit switches + collector.  Both see the congested queue;
    only INT pays for it on the wire (per-packet metadata), which at a
    saturated bottleneck comes straight out of goodput.  The small MSS
    makes the per-packet overhead visible, as on a 1500 B-MTU WAN."""
    from repro.core.config import MonitorConfig
    from repro.core.monitor import P4Monitor
    from repro.netsim.engine import Simulator
    from repro.netsim.host import Host
    from repro.netsim.link import connect
    from repro.netsim.tap import OpticalTap
    from repro.netsim.units import mbps, millis, seconds
    from repro.p4.int import IntCollector, IntSink, IntTransitSwitch
    from repro.netsim.switch import LegacySwitch
    from repro.tcp.apps import start_transfer
    from repro.tcp.stack import TcpHostStack

    results = {}
    overhead = {"tap": 0, "int": 0}
    queue_seen = {}
    postcards = 0
    rate = mbps(bottleneck_mbps)

    for mode in ("tap", "int"):
        sim = Simulator()
        a = Host(sim, "src", "10.0.0.1")
        b = Host(sim, "dst", "10.0.0.2")
        if mode == "int":
            sw1 = IntTransitSwitch(sim, "sw1", switch_id=1)
            sw2 = IntTransitSwitch(sim, "sw2", switch_id=2)
        else:
            sw1 = LegacySwitch(sim, "sw1")
            sw2 = LegacySwitch(sim, "sw2")
        buf = 120_000
        l1 = connect(sim, a, sw1, 4 * rate, millis(1))
        lb = connect(sim, sw1, sw2, rate, millis(8),
                     queue_bytes_a=buf, queue_bytes_b=buf)
        l2 = connect(sim, sw2, b, 4 * rate, millis(1))
        sw1.add_route(b.ip, lb.a)
        sw1.add_route(a.ip, l1.b)
        sw2.add_route(b.ip, l2.a)
        sw2.add_route(a.ip, lb.b)

        monitor = None
        collector = None
        if mode == "tap":
            monitor = P4Monitor(MonitorConfig(
                bottleneck_rate_bps=rate, buffer_bytes=buf,
                long_flow_bytes=20_000,
            ))
            OpticalTap(sim, sw1, monitor.receive_copy, egress_ports=[lb.a])
        else:
            collector = IntCollector()
            IntSink(sim, b, collector)

        cstack = TcpHostStack(sim, a, default_mss=mss)
        sstack = TcpHostStack(sim, b, default_mss=mss)
        client, server = start_transfer(sim, cstack, sstack, b.ip,
                                        duration_s=duration_s)
        sim.run_until(seconds(duration_s + 2.0))
        results[mode] = server.total_bytes * 8 / duration_s

        if mode == "tap":
            snap = monitor.queue.flow_qdelay_max.snapshot()
            queue_seen[mode] = bool(snap.max() > 0)
        else:
            overhead["int"] = collector.telemetry_overhead_bytes()
            queue_seen[mode] = collector.max_queue_depth(1) > 0
            postcards = len(collector)

    return IntComparisonResult(
        tap_goodput_bps=results["tap"],
        int_goodput_bps=results["int"],
        tap_wire_overhead_bytes=overhead["tap"],
        int_wire_overhead_bytes=overhead["int"],
        tap_saw_queue=queue_seen["tap"],
        int_saw_queue=queue_seen["int"],
        int_postcards=postcards,
    )


# -- 5. CCA signatures through the monitor ------------------------------------


@dataclass
class CcaSignatureRow:
    cc: str
    throughput_mbps: float
    mean_rtt_ms: float
    mean_queue_occupancy_pct: float
    retransmissions: int
    verdict: str


def ablate_cca_signatures(
    ccas: Tuple[str, ...] = ("cubic", "reno", "bbr"),
    duration_s: float = 15.0,
    bottleneck_mbps: float = 50.0,
) -> List[CcaSignatureRow]:
    """One solo flow per CCA over the same path; the monitor's passive
    metrics alone separate them: loss-based CCAs fill the buffer (high
    occupancy, inflated RTT, periodic retransmissions) while BBR holds a
    small standing queue with ~zero loss — the wire-visible signatures
    P4CCI classifies on."""
    import repro.tcp.bbr  # noqa: F401  (registers 'bbr')
    from repro.core.config import MetricKind

    rows: List[CcaSignatureRow] = []
    for cc in ccas:
        scenario = Scenario(
            ScenarioConfig(bottleneck_mbps=bottleneck_mbps,
                           rtts_ms=(40.0, 40.0, 40.0), reference_rtt_ms=40.0),
            with_perfsonar=False,
        )
        handle = scenario.add_flow(0, duration_s=duration_s, cc=cc)
        scenario.run(duration_s + 1.5)
        lo, hi = duration_s * 0.3, duration_s
        thr = window(scenario.throughput_series_mbps(handle), lo, hi)
        rtt = window(scenario.monitor_series(handle, MetricKind.RTT), lo, hi)
        occ = window(
            scenario.monitor_series(handle, MetricKind.QUEUE_OCCUPANCY), lo, hi)
        tracked = scenario.monitored_flow(handle)
        mask = scenario.monitor.config.flow_slots - 1
        retx = scenario.control_plane.runtime.read_register(
            "pkt_loss", tracked.flow_id & mask)
        rows.append(CcaSignatureRow(
            cc=cc,
            throughput_mbps=sum(thr) / len(thr) if thr else 0.0,
            mean_rtt_ms=sum(rtt) / len(rtt) if rtt else 0.0,
            mean_queue_occupancy_pct=sum(occ) / len(occ) if occ else 0.0,
            retransmissions=retx,
            verdict=tracked.verdict.value,
        ))
    return rows


def cca_table(rows: List[CcaSignatureRow]) -> str:
    return render_table(
        ["CCA", "throughput (Mbps)", "RTT (ms)", "queue occ (%)",
         "retransmissions", "limiter verdict"],
        [(r.cc, f"{r.throughput_mbps:.1f}", f"{r.mean_rtt_ms:.1f}",
          f"{r.mean_queue_occupancy_pct:.0f}", r.retransmissions, r.verdict)
         for r in rows],
    )


def ablate_alert_boost(duration_s: float = 20.0, congest_s: float = 8.0) -> BoostAblationResult:
    """Fig. 6 line 3's policy: boost queue-occupancy reporting to 10/s
    when occupancy exceeds 30 %.  Measures samples captured during the
    congestion episode with and without the boost."""
    counts = []
    alerts = 0
    for boosted in (True, False):
        scenario = Scenario(ScenarioConfig(bottleneck_mbps=50.0), with_perfsonar=False)
        if boosted:
            scenario.control_plane.apply_metric_config(
                MetricKind.QUEUE_OCCUPANCY,
                alert_enabled=True, alert_threshold=30.0,
                boosted_samples_per_second=10.0,
            )
        # Congest the link mid-run with two competing flows.
        scenario.add_flow(0, start_s=congest_s, duration_s=duration_s - congest_s)
        scenario.add_flow(1, start_s=congest_s, duration_s=duration_s - congest_s)
        scenario.run(duration_s)
        samples = scenario.control_plane.flow_samples[MetricKind.QUEUE_OCCUPANCY]
        in_window = [s for s in samples if s.time_ns >= congest_s * 1e9]
        counts.append(len(in_window))
        if boosted:
            alerts = len(scenario.control_plane.alerts.history)
    return BoostAblationResult(
        samples_with_boost=counts[0],
        samples_without_boost=counts[1],
        alerts_raised=alerts,
    )
