"""A P4Runtime-like control API.

The paper's control plane "utilizes the APIs provided by the switch
manufacturer to access the measurements maintained by the data plane at
run-time" (§3.2).  :class:`P4Program` is the named-object registry a
compiled program exposes (registers, counters, tables, digests,
sketches); :class:`P4RuntimeClient` is the handle the control plane talks
through — the only coupling between :mod:`repro.core.control_plane` and
the data-plane internals.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional

import numpy as np

from repro.p4.externs import Digest, DigestReceiver
from repro.p4.histogram import HistogramRegister
from repro.p4.registers import Counter, RegisterArray
from repro.p4.sketch import CountMinSketch
from repro.p4.tables import MatchActionTable
from repro.p4.time_windows import TimeWindowRegister


class P4Program:
    """Registry of a loaded program's control-plane-visible objects."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.registers: Dict[str, RegisterArray] = {}
        self.counters: Dict[str, Counter] = {}
        self.tables: Dict[str, MatchActionTable] = {}
        self.digests: Dict[str, Digest] = {}
        self.sketches: Dict[str, CountMinSketch] = {}
        self.histograms: Dict[str, HistogramRegister] = {}
        self.time_windows: Dict[str, TimeWindowRegister] = {}

    # Registration (called by the program at construction time).

    def register(self, reg: RegisterArray) -> RegisterArray:
        if reg.name in self.registers:
            raise ValueError(f"duplicate register {reg.name!r}")
        self.registers[reg.name] = reg
        return reg

    def counter(self, ctr: Counter) -> Counter:
        if ctr.name in self.counters:
            raise ValueError(f"duplicate counter {ctr.name!r}")
        self.counters[ctr.name] = ctr
        return ctr

    def table(self, tbl: MatchActionTable) -> MatchActionTable:
        if tbl.name in self.tables:
            raise ValueError(f"duplicate table {tbl.name!r}")
        self.tables[tbl.name] = tbl
        return tbl

    def digest(self, dig: Digest) -> Digest:
        if dig.name in self.digests:
            raise ValueError(f"duplicate digest {dig.name!r}")
        self.digests[dig.name] = dig
        return dig

    def sketch(self, name: str, cms: CountMinSketch) -> CountMinSketch:
        if name in self.sketches:
            raise ValueError(f"duplicate sketch {name!r}")
        self.sketches[name] = cms
        return cms

    def histogram(self, hist: HistogramRegister) -> HistogramRegister:
        if hist.name in self.histograms:
            raise ValueError(f"duplicate histogram {hist.name!r}")
        self.histograms[hist.name] = hist
        return hist

    def time_window(self, tw: TimeWindowRegister) -> TimeWindowRegister:
        if tw.name in self.time_windows:
            raise ValueError(f"duplicate time-window register {tw.name!r}")
        self.time_windows[tw.name] = tw
        return tw

    # -- whole-program state (validation / replay round-trips) ---------------

    def state_snapshot(self) -> Dict[str, np.ndarray]:
        """Copy of every stateful object the data plane owns: one array per
        register, one ``(depth, width)`` matrix per sketch and a packet/byte
        pair per counter.  This is what a full control-plane register sync
        would return, and what the differential checker and the replay
        round-trip tests compare."""
        state: Dict[str, np.ndarray] = {}
        for name, reg in self.registers.items():
            state[f"register/{name}"] = reg.snapshot()
        for name, cms in self.sketches.items():
            state[f"sketch/{name}"] = cms.snapshot()
        for name, ctr in self.counters.items():
            pkts, nbytes = ctr.snapshot()
            state[f"counter/{name}/packets"] = pkts
            state[f"counter/{name}/bytes"] = nbytes
        for name, hist in self.histograms.items():
            # Both banks plus the flip phase: two replays of the same
            # capture with the same flip schedule must digest equal.
            state[f"histogram/{name}/bank0"] = hist.bank(0)
            state[f"histogram/{name}/bank1"] = hist.bank(1)
            state[f"histogram/{name}/active"] = np.array([hist.active],
                                                         dtype=np.uint64)
        for name, tw in self.time_windows.items():
            state[f"time_window/{name}/bank0"] = tw.bank(0)
            state[f"time_window/{name}/bank1"] = tw.bank(1)
            state[f"time_window/{name}/active"] = np.array([tw.active],
                                                           dtype=np.uint64)
        return state

    def state_digest(self) -> str:
        """SHA-256 over the canonical byte serialisation of
        :meth:`state_snapshot` — equal digests mean bit-identical data-plane
        state (two replays of the same capture must agree)."""
        h = hashlib.sha256()
        for name, arr in sorted(self.state_snapshot().items()):
            h.update(name.encode())
            h.update(np.ascontiguousarray(arr, dtype=np.uint64).tobytes())
        return h.hexdigest()

    def state_restore(self, state: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`state_snapshot`: bulk-load every stateful
        object from a snapshot taken on a program with the same geometry
        (the checkpoint restore path).  After a restore,
        :meth:`state_digest` equals the digest of the snapshotted
        program."""
        def need(key: str) -> np.ndarray:
            try:
                return state[key]
            except KeyError:
                raise KeyError(
                    f"snapshot is missing {key!r} — was it taken on a "
                    f"program with the same geometry as {self.name!r}?"
                ) from None

        for name, reg in self.registers.items():
            reg.load(need(f"register/{name}"))
        for name, cms in self.sketches.items():
            cms.load(need(f"sketch/{name}"))
        for name, ctr in self.counters.items():
            ctr.load(need(f"counter/{name}/packets"),
                     need(f"counter/{name}/bytes"))
        for name, hist in self.histograms.items():
            hist.load_banks(need(f"histogram/{name}/bank0"),
                            need(f"histogram/{name}/bank1"),
                            int(need(f"histogram/{name}/active")[0]))
        for name, tw in self.time_windows.items():
            tw.load_banks(need(f"time_window/{name}/bank0"),
                          need(f"time_window/{name}/bank1"),
                          int(need(f"time_window/{name}/active")[0]))


class P4RuntimeClient:
    """Control-plane handle: named reads/writes plus digest subscription."""

    def __init__(self, program: P4Program) -> None:
        self.program = program
        self.register_reads = 0

    # -- registers ---------------------------------------------------------

    def read_register(self, name: str, index: Optional[int] = None):
        reg = self._reg(name)
        self.register_reads += 1
        if index is None:
            return reg.snapshot()
        return reg.read(index)

    def read_registers(self, name: str, indices: Iterable[int]) -> np.ndarray:
        self.register_reads += 1
        return self._reg(name).read_many(list(indices))

    def write_register(self, name: str, index: int, value: int) -> None:
        self._reg(name).write(index, value)

    def clear_register(self, name: str, index: Optional[int] = None) -> None:
        self._reg(name).clear(index)

    def snapshot_all(self) -> Dict[str, np.ndarray]:
        """Full data-plane state sync (see :meth:`P4Program.state_snapshot`)."""
        self.register_reads += 1
        return self.program.state_snapshot()

    def state_digest(self) -> str:
        return self.program.state_digest()

    def restore_state(self, state: Dict[str, np.ndarray]) -> None:
        """Bulk-load a full data-plane snapshot (checkpoint restore)."""
        self.program.state_restore(state)

    def _reg(self, name: str) -> RegisterArray:
        try:
            return self.program.registers[name]
        except KeyError:
            raise KeyError(
                f"program {self.program.name!r} has no register {name!r}; "
                f"available: {sorted(self.program.registers)}"
            ) from None

    # -- histograms ----------------------------------------------------------

    def histogram(self, name: str) -> HistogramRegister:
        try:
            return self.program.histograms[name]
        except KeyError:
            raise KeyError(
                f"program {self.program.name!r} has no histogram {name!r}; "
                f"available: {sorted(self.program.histograms)}"
            ) from None

    def read_histogram(self, name: str) -> np.ndarray:
        """All-time bin counts (both banks summed), one row per index."""
        self.register_reads += 1
        return self.histogram(name).snapshot()

    def extract_histogram(self, name: str) -> np.ndarray:
        """Flip the banks and return + clear the quiescent one — the
        per-window delta counts since the previous extraction."""
        self.register_reads += 1
        return self.histogram(name).extract()

    # -- time windows --------------------------------------------------------

    def time_window(self, name: str) -> TimeWindowRegister:
        try:
            return self.program.time_windows[name]
        except KeyError:
            raise KeyError(
                f"program {self.program.name!r} has no time-window register "
                f"{name!r}; available: {sorted(self.program.time_windows)}"
            ) from None

    def read_time_windows(self, name: str) -> np.ndarray:
        """Copy of the active bank (windows still accumulating)."""
        self.register_reads += 1
        tw = self.time_window(name)
        return tw.bank(tw.active)

    def extract_time_windows(self, name: str) -> np.ndarray:
        """Flip the banks and return + clear the quiescent one — every
        window cell written since the previous extraction."""
        self.register_reads += 1
        return self.time_window(name).extract()

    # -- counters ------------------------------------------------------------

    def read_counter(self, name: str, index: int) -> tuple[int, int]:
        ctr = self.program.counters[name]
        return ctr.packets(index), ctr.bytes(index)

    # -- tables ----------------------------------------------------------------

    def table(self, name: str) -> MatchActionTable:
        return self.program.tables[name]

    # -- digests -----------------------------------------------------------------

    def subscribe_digest(self, name: str, receiver: DigestReceiver) -> None:
        try:
            self.program.digests[name].subscribe(receiver)
        except KeyError:
            raise KeyError(
                f"program {self.program.name!r} has no digest {name!r}; "
                f"available: {sorted(self.program.digests)}"
            ) from None

    def unsubscribe_digest(self, name: str, receiver: DigestReceiver) -> None:
        """Detach a receiver; unseen messages backlog for the successor
        (how a restarted control plane catches up on digests)."""
        try:
            self.program.digests[name].unsubscribe(receiver)
        except KeyError:
            raise KeyError(
                f"program {self.program.name!r} has no digest {name!r}; "
                f"available: {sorted(self.program.digests)}"
            ) from None
