"""A P4Runtime-like control API.

The paper's control plane "utilizes the APIs provided by the switch
manufacturer to access the measurements maintained by the data plane at
run-time" (§3.2).  :class:`P4Program` is the named-object registry a
compiled program exposes (registers, counters, tables, digests,
sketches); :class:`P4RuntimeClient` is the handle the control plane talks
through — the only coupling between :mod:`repro.core.control_plane` and
the data-plane internals.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.p4.externs import Digest, DigestReceiver
from repro.p4.registers import Counter, RegisterArray
from repro.p4.sketch import CountMinSketch
from repro.p4.tables import MatchActionTable


class P4Program:
    """Registry of a loaded program's control-plane-visible objects."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.registers: Dict[str, RegisterArray] = {}
        self.counters: Dict[str, Counter] = {}
        self.tables: Dict[str, MatchActionTable] = {}
        self.digests: Dict[str, Digest] = {}
        self.sketches: Dict[str, CountMinSketch] = {}

    # Registration (called by the program at construction time).

    def register(self, reg: RegisterArray) -> RegisterArray:
        if reg.name in self.registers:
            raise ValueError(f"duplicate register {reg.name!r}")
        self.registers[reg.name] = reg
        return reg

    def counter(self, ctr: Counter) -> Counter:
        if ctr.name in self.counters:
            raise ValueError(f"duplicate counter {ctr.name!r}")
        self.counters[ctr.name] = ctr
        return ctr

    def table(self, tbl: MatchActionTable) -> MatchActionTable:
        if tbl.name in self.tables:
            raise ValueError(f"duplicate table {tbl.name!r}")
        self.tables[tbl.name] = tbl
        return tbl

    def digest(self, dig: Digest) -> Digest:
        if dig.name in self.digests:
            raise ValueError(f"duplicate digest {dig.name!r}")
        self.digests[dig.name] = dig
        return dig

    def sketch(self, name: str, cms: CountMinSketch) -> CountMinSketch:
        if name in self.sketches:
            raise ValueError(f"duplicate sketch {name!r}")
        self.sketches[name] = cms
        return cms


class P4RuntimeClient:
    """Control-plane handle: named reads/writes plus digest subscription."""

    def __init__(self, program: P4Program) -> None:
        self.program = program
        self.register_reads = 0

    # -- registers ---------------------------------------------------------

    def read_register(self, name: str, index: Optional[int] = None):
        reg = self._reg(name)
        self.register_reads += 1
        if index is None:
            return reg.snapshot()
        return reg.read(index)

    def read_registers(self, name: str, indices: Iterable[int]) -> np.ndarray:
        self.register_reads += 1
        return self._reg(name).read_many(list(indices))

    def write_register(self, name: str, index: int, value: int) -> None:
        self._reg(name).write(index, value)

    def clear_register(self, name: str, index: Optional[int] = None) -> None:
        self._reg(name).clear(index)

    def _reg(self, name: str) -> RegisterArray:
        try:
            return self.program.registers[name]
        except KeyError:
            raise KeyError(
                f"program {self.program.name!r} has no register {name!r}; "
                f"available: {sorted(self.program.registers)}"
            ) from None

    # -- counters ------------------------------------------------------------

    def read_counter(self, name: str, index: int) -> tuple[int, int]:
        ctr = self.program.counters[name]
        return ctr.packets(index), ctr.bytes(index)

    # -- tables ----------------------------------------------------------------

    def table(self, name: str) -> MatchActionTable:
        return self.program.tables[name]

    # -- digests -----------------------------------------------------------------

    def subscribe_digest(self, name: str, receiver: DigestReceiver) -> None:
        try:
            self.program.digests[name].subscribe(receiver)
        except KeyError:
            raise KeyError(
                f"program {self.program.name!r} has no digest {name!r}; "
                f"available: {sorted(self.program.digests)}"
            ) from None
