"""Read-flip histogram register extern.

P4TG-style distribution measurement: instead of a scalar "latest RTT"
register, the data plane maintains one bin-count row per tracked index
(flow slot or egress port) and increments the bin a sample falls into —
a handful of TCAM range matches plus one register increment on hardware,
one ``bisect`` plus one array increment here.

The control-plane read problem is solved PrintQueue-style with **paired
banks**: the data plane always writes the *active* bank; the control
plane ``flip()``\\ s the banks and then reads/clears the now-quiescent
one at leisure while new samples land in the other.  Each
:meth:`extract` therefore returns exactly the samples observed since the
previous extraction (a per-window delta), and no sample is ever lost or
double-counted — the conservation property the hypothesis suite pins
down across arbitrary flip schedules.

Bin edges are configurable (linear or logarithmic), shared by every row
of one extern, and use the same ``bisect_left`` upper-bound semantics as
:class:`repro.telemetry.metrics.Histogram`: ``counts`` has
``len(edges) + 1`` entries, the last being the overflow bucket, so the
existing :func:`repro.telemetry.export.histogram_quantile` consumes the
dumps unchanged.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence

import numpy as np

from repro.telemetry import provenance
from repro.telemetry.export import histogram_quantile

__all__ = ["HistogramRegister", "linear_edges", "log_edges", "make_edges",
           "bin_quantile", "bin_series", "merge_counts"]


def linear_edges(lo: int, hi: int, nbins: int) -> List[int]:
    """``nbins`` equal-width upper bounds covering [lo, hi]."""
    if nbins < 2:
        raise ValueError("need at least 2 bins")
    if not 0 <= lo < hi:
        raise ValueError("need 0 <= lo < hi")
    step = (hi - lo) / nbins
    edges = [int(round(lo + step * (i + 1))) for i in range(nbins)]
    edges[-1] = int(hi)
    return _dedup(edges)


def log_edges(lo: int, hi: int, nbins: int) -> List[int]:
    """``nbins`` geometrically-spaced upper bounds covering [lo, hi] —
    constant *relative* resolution, the right shape for latency."""
    if nbins < 2:
        raise ValueError("need at least 2 bins")
    if not 0 < lo < hi:
        raise ValueError("need 0 < lo < hi")
    ratio = (hi / lo) ** (1.0 / nbins)
    edges = [int(round(lo * ratio ** (i + 1))) for i in range(nbins)]
    edges[-1] = int(hi)
    return _dedup(edges)


def make_edges(scale: str, lo: int, hi: int, nbins: int) -> List[int]:
    if scale == "linear":
        return linear_edges(lo, hi, nbins)
    if scale == "log":
        return log_edges(lo, hi, nbins)
    raise ValueError(f"unknown bin scale {scale!r} (expected linear|log)")


def _dedup(edges: List[int]) -> List[int]:
    """Strictly increasing edges (integer rounding can collapse the
    lowest log bins at coarse resolutions)."""
    out: List[int] = []
    for e in edges:
        if not out or e > out[-1]:
            out.append(e)
    return out


def bin_series(edges: Sequence[int], counts: Sequence[int],
               observed_max: Optional[float] = None) -> dict:
    """The ``{"buckets", "counts", "count", "max"}`` dump shape the
    telemetry exporters consume, from one bin row."""
    counts = [int(c) for c in counts]
    return {
        "buckets": list(edges),
        "counts": counts,
        "count": sum(counts),
        "max": observed_max,
    }


def bin_quantile(edges: Sequence[int], counts: Sequence[int], q: float) -> float:
    """Bucket-upper-bound ``q`` quantile of one bin row (same estimator
    as the telemetry histograms, so percentiles agree across layers)."""
    return histogram_quantile(bin_series(edges, counts), q)


def merge_counts(*rows: np.ndarray) -> np.ndarray:
    """Elementwise merge of bin rows (associative + commutative: the
    merged histogram is the histogram of the union of the samples)."""
    if not rows:
        raise ValueError("nothing to merge")
    out = np.zeros_like(np.asarray(rows[0], dtype=np.uint64))
    for row in rows:
        out = out + np.asarray(row, dtype=np.uint64)
    return out


class HistogramRegister:
    """``size`` rows of bin counters with paired read/flip banks.

    Data plane: :meth:`observe` bins a sample into the active bank.
    Control plane: :meth:`extract` flips the banks and returns + clears
    the quiescent one — the per-window delta since the last extract.
    """

    def __init__(self, name: str, size: int, edges: Sequence[int]) -> None:
        if size <= 0:
            raise ValueError("histogram size must be positive")
        edges = [int(e) for e in edges]
        if len(edges) < 2:
            raise ValueError("need at least 2 bin edges")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bin edges must be strictly increasing")
        self.name = name
        self.size = size
        self.edges = edges
        self.nbins = len(edges) + 1  # + overflow bucket
        # Two (size, nbins) banks; the data plane writes banks[active].
        self._banks = [np.zeros((size, self.nbins), dtype=np.uint64),
                       np.zeros((size, self.nbins), dtype=np.uint64)]
        self.active = 0
        # Plain-int tallies, pulled by telemetry/profiler collectors.
        self.ops = 0
        self.flips = 0
        # Provenance mirrors the RegisterArray discipline: sampled
        # packets record old -> new bin counts, unsampled ones keep the
        # last-writer linkage exact.
        self._trace = provenance.tracer()
        self._lw = (None if self._trace is None
                    else self._trace.writer_map(name, size))

    # -- data-plane access (per packet) ---------------------------------------

    def observe(self, index: int, value: int) -> None:
        self.ops += 1
        b = bisect_left(self.edges, value)
        row = self._banks[self.active][index]
        tr = self._trace
        if tr is not None:
            tid = tr._ctx_id
            if tid:
                if tr._ctx_rec:
                    old = int(row[b])
                    row[b] = old + 1
                    tr.register_write(self.name, index, old, old + 1)
                    return
                self._lw[index] = tid
        row[b] += np.uint64(1)

    # -- control-plane access (bulk) ------------------------------------------

    def flip(self) -> int:
        """Swap the banks; returns the index of the now-quiescent bank
        (the one the data plane was writing until this call)."""
        quiescent = self.active
        self.active ^= 1
        self.flips += 1
        return quiescent

    def read_quiescent(self) -> np.ndarray:
        """Copy of the bank the data plane is *not* writing."""
        return self._banks[1 - self.active].copy()

    def clear_quiescent(self) -> None:
        self._banks[1 - self.active][:] = 0

    def extract(self) -> np.ndarray:
        """Flip, then read + clear the quiescent bank: the counts of
        every sample observed since the previous extract (plus whatever
        residue the pre-flip quiescent bank still held — zero under the
        flip/read/clear discipline this method enforces)."""
        self.flip()
        window = self.read_quiescent()
        self.clear_quiescent()
        return window

    def snapshot(self) -> np.ndarray:
        """Both banks summed — the all-time counts regardless of flip
        phase (control-plane sync read, used by tests and state dumps)."""
        return self._banks[0] + self._banks[1]

    def bank(self, which: int) -> np.ndarray:
        return self._banks[which].copy()

    def total_observations(self) -> int:
        return int(self._banks[0].sum() + self._banks[1].sum())

    def clear(self) -> None:
        self._banks[0][:] = 0
        self._banks[1][:] = 0

    def load_banks(self, bank0: np.ndarray, bank1: np.ndarray,
                   active: int) -> None:
        """Control-plane bulk restore of both banks and the flip phase
        (checkpoint path)."""
        bank0 = np.asarray(bank0, dtype=np.uint64)
        bank1 = np.asarray(bank1, dtype=np.uint64)
        if bank0.shape != self._banks[0].shape or bank1.shape != self._banks[1].shape:
            raise ValueError("histogram bank shape mismatch")
        if active not in (0, 1):
            raise ValueError("active bank must be 0 or 1")
        self._banks[0][:] = bank0
        self._banks[1][:] = bank1
        self.active = active

    def row_quantile(self, index: int, q: float) -> float:
        """Bucket-upper-bound quantile of one row's all-time counts."""
        return bin_quantile(self.edges, self.snapshot()[index], q)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HistogramRegister({self.name!r}, size={self.size}, "
                f"bins={self.nbins})")
