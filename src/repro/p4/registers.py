"""Stateful register arrays.

P4 registers are fixed-width cell arrays that the data plane reads/
modifies/writes per packet and the control plane reads (and optionally
clears) asynchronously.  We back them with preallocated numpy arrays —
the guide's "hot state lives in arrays, updated in place" rule — and
model width truncation, which is semantically important: a 32-bit
timestamp register on Tofino wraps, and Algorithm 1 must survive that.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.telemetry import provenance


class RegisterArray:
    """A register array of ``size`` cells, each ``width_bits`` wide."""

    def __init__(self, name: str, size: int, width_bits: int = 32) -> None:
        if size <= 0:
            raise ValueError("register size must be positive")
        if not 1 <= width_bits <= 64:
            raise ValueError("width must be between 1 and 64 bits")
        self.name = name
        self.size = size
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        # uint64 holds any width up to 64; masking keeps wrap semantics.
        self._cells = np.zeros(size, dtype=np.uint64)
        # Plain-int data-plane op tally, pulled by the telemetry collector.
        self.ops = 0
        # Provenance: mutating ops report old -> new under the packet
        # context (and feed the last-writer map the control plane uses
        # to attribute extractions).  Reads stay untraced.
        self._trace = provenance.tracer()
        self._lw = (None if self._trace is None
                    else self._trace.writer_map(name, size))

    # -- data-plane access (per packet) ---------------------------------------

    def read(self, index: int) -> int:
        self.ops += 1
        return int(self._cells[index])

    def write(self, index: int, value: int) -> None:
        self.ops += 1
        tr = self._trace
        if tr is not None:
            tid = tr._ctx_id
            if tid:
                if tr._ctx_rec:
                    old = int(self._cells[index])
                    self._cells[index] = value & self._mask
                    tr.register_write(self.name, index, old,
                                      value & self._mask)
                    return
                # Unsampled packet: keep the last-writer linkage exact
                # (the control plane must not attribute this cell to an
                # older, sampled packet) without paying for the event.
                self._lw[index] = tid
        self._cells[index] = value & self._mask

    def add(self, index: int, value: int) -> int:
        """Read-modify-write increment; returns the new value."""
        self.ops += 1
        old = int(self._cells[index])
        new = (old + value) & self._mask
        self._cells[index] = new
        tr = self._trace
        if tr is not None:
            tid = tr._ctx_id
            if tid:
                if tr._ctx_rec:
                    tr.register_write(self.name, index, old, new)
                else:
                    self._lw[index] = tid
        return new

    def maximum(self, index: int, value: int) -> int:
        """Tofino-style max ALU: keep the larger of cell and value."""
        self.ops += 1
        old = int(self._cells[index])
        new = max(old, value & self._mask)
        self._cells[index] = new
        tr = self._trace
        if tr is not None:
            tid = tr._ctx_id
            if tid:
                if tr._ctx_rec:
                    tr.register_write(self.name, index, old, new)
                else:
                    self._lw[index] = tid
        return new

    # -- control-plane access (bulk) -----------------------------------------

    def snapshot(self) -> np.ndarray:
        """Copy of all cells (a control-plane sync read)."""
        return self._cells.copy()

    def read_many(self, indices) -> np.ndarray:
        return self._cells[np.asarray(indices, dtype=np.intp)].copy()

    def clear(self, index: Optional[int] = None) -> None:
        if index is None:
            self._cells[:] = 0
        else:
            self._cells[index] = 0

    def load(self, values: np.ndarray) -> None:
        """Control-plane bulk write (used by tests and resets)."""
        if len(values) != self.size:
            raise ValueError("value array size mismatch")
        self._cells[:] = np.asarray(values, dtype=np.uint64) & np.uint64(self._mask)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisterArray({self.name!r}, size={self.size}, width={self.width_bits})"


class Counter:
    """An indexed packet/byte counter pair (P4 ``counter`` extern)."""

    def __init__(self, name: str, size: int) -> None:
        if size <= 0:
            raise ValueError("counter size must be positive")
        self.name = name
        self.size = size
        self._packets = np.zeros(size, dtype=np.uint64)
        self._bytes = np.zeros(size, dtype=np.uint64)

    def count(self, index: int, nbytes: int) -> None:
        self._packets[index] += 1
        self._bytes[index] += np.uint64(nbytes)

    def packets(self, index: int) -> int:
        return int(self._packets[index])

    def bytes(self, index: int) -> int:
        return int(self._bytes[index])

    def snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        return self._packets.copy(), self._bytes.copy()

    def clear(self) -> None:
        self._packets[:] = 0
        self._bytes[:] = 0

    def load(self, packets: np.ndarray, nbytes: np.ndarray) -> None:
        """Control-plane bulk restore of both tallies (checkpoint path)."""
        if len(packets) != self.size or len(nbytes) != self.size:
            raise ValueError("counter array size mismatch")
        self._packets[:] = np.asarray(packets, dtype=np.uint64)
        self._bytes[:] = np.asarray(nbytes, dtype=np.uint64)
