"""Exponentially-coarsening time-window registers (queue ancestry).

PrintQueue-style data-plane forensics: the switch keeps ``levels``
register arrays, each recording *who occupied the queue* during fixed
time windows.  Level 0 uses the finest window (``base_window_ns``);
every level above doubles the window width, so level k covers
``cells * base_window_ns << k`` nanoseconds of history with the same
memory.  A packet leaving the queue updates one cell per level: the
cell for the window its egress timestamp falls into.

Each cell is five ``uint64`` fields::

    WID    window id (egress_ts // width) — identifies the window the
           cell currently holds; the ring reuses cells, so a stale id
           means the cell belongs to an evicted, older window
    SIG    flow signature of the *last* packet recorded (last-writer
           sampling, the single-slot compromise hardware makes)
    PKTS   packets recorded in the window
    BYTES  ip_total_len bytes recorded in the window
    MAXQ   maximum queue delay (ns) seen by any packet in the window

Extraction reuses the ``HistogramRegister`` paired-bank discipline:
``flip()`` swaps the active bank between packet updates, the control
plane reads and clears the quiescent bank, and nothing is lost — every
update lands in exactly one bank.  Cells evicted *in the data plane*
(ring wrap-around before the control plane read them) are tallied in
``evicted_pkts``/``evicted_bytes`` so the conservation invariant stays
exact: per level, packets observed == extracted + residue + evicted.
"""

from __future__ import annotations

from typing import List, NamedTuple

import numpy as np

from repro.telemetry import provenance

__all__ = [
    "TimeWindowRegister",
    "WindowRecord",
    "decode_windows",
    "F_WID",
    "F_SIG",
    "F_PKTS",
    "F_BYTES",
    "F_MAXQ",
    "N_FIELDS",
]

# Cell field layout (all uint64).
F_WID, F_SIG, F_PKTS, F_BYTES, F_MAXQ = range(5)
N_FIELDS = 5


class WindowRecord(NamedTuple):
    """One decoded, non-empty time-window cell."""

    level: int
    window_id: int
    start_ns: int
    width_ns: int
    flow_sig: int
    pkt_count: int
    byte_count: int
    max_qdepth_ns: int

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.width_ns


def decode_windows(bank: np.ndarray, base_window_ns: int) -> List[WindowRecord]:
    """Decode a ``(levels, cells, 5)`` bank into its non-empty windows."""
    records: List[WindowRecord] = []
    levels = bank.shape[0]
    for level in range(levels):
        width = base_window_ns << level
        rows = bank[level]
        for idx in np.flatnonzero(rows[:, F_PKTS]):
            row = rows[idx]
            wid = int(row[F_WID])
            records.append(WindowRecord(
                level=level,
                window_id=wid,
                start_ns=wid * width,
                width_ns=width,
                flow_sig=int(row[F_SIG]),
                pkt_count=int(row[F_PKTS]),
                byte_count=int(row[F_BYTES]),
                max_qdepth_ns=int(row[F_MAXQ]),
            ))
    return records


class TimeWindowRegister:
    """k-level coarsening time-window bank pair with flip extraction."""

    def __init__(self, name: str, levels: int, cells: int,
                 base_window_ns: int) -> None:
        if levels < 1:
            raise ValueError(f"time windows need >= 1 level, got {levels}")
        if cells <= 0:
            raise ValueError(f"time-window register needs > 0 cells, got {cells}")
        if base_window_ns <= 0:
            raise ValueError(
                f"base window must be positive, got {base_window_ns} ns")
        self.name = name
        self.levels = levels
        self.cells = cells
        self.base_window_ns = base_window_ns
        self._banks = [
            np.zeros((levels, cells, N_FIELDS), dtype=np.uint64),
            np.zeros((levels, cells, N_FIELDS), dtype=np.uint64),
        ]
        self.active = 0
        # Windows overwritten in the data plane before extraction: the
        # ring reused their cell.  Plain ints — hot path.
        self.evicted_pkts = [0] * levels
        self.evicted_bytes = [0] * levels
        self.ops = 0
        self.flips = 0
        self._trace = provenance.tracer()
        self._lw = (None if self._trace is None
                    else self._trace.writer_map(name, cells))

    # -- data plane ---------------------------------------------------

    def observe(self, ts_ns: int, flow_sig: int, nbytes: int,
                qdepth_ns: int) -> None:
        """Record one departing packet into its window at every level."""
        self.ops += 1
        bank = self._banks[self.active]
        cells = self.cells
        width = self.base_window_ns
        old_pkts0 = 0
        new_pkts0 = 0
        idx0 = 0
        for level in range(self.levels):
            wid = ts_ns // width
            idx = wid % cells
            cell = bank[level, idx]
            pkts = int(cell[F_PKTS])
            if pkts and int(cell[F_WID]) != wid:
                # Ring wrapped: an older window still occupied the cell.
                self.evicted_pkts[level] += pkts
                self.evicted_bytes[level] += int(cell[F_BYTES])
                cell[:] = 0
                pkts = 0
            cell[F_WID] = wid
            cell[F_SIG] = flow_sig
            cell[F_PKTS] = pkts + 1
            cell[F_BYTES] += np.uint64(nbytes)
            if qdepth_ns > cell[F_MAXQ]:
                cell[F_MAXQ] = qdepth_ns
            if level == 0:
                old_pkts0, new_pkts0, idx0 = pkts, pkts + 1, idx
            width <<= 1
        tr = self._trace
        if tr is not None:
            tid = tr._ctx_id
            if tid:
                if tr._ctx_rec:
                    tr.register_write(self.name, idx0, old_pkts0, new_pkts0)
                    return
                self._lw[idx0] = tid

    # -- control plane ------------------------------------------------

    def flip(self) -> int:
        """Swap banks; returns the now-quiescent bank index."""
        quiescent = self.active
        self.active ^= 1
        self.flips += 1
        return quiescent

    def read_quiescent(self) -> np.ndarray:
        return self._banks[1 - self.active].copy()

    def clear_quiescent(self) -> None:
        self._banks[1 - self.active][:] = 0

    def extract(self) -> np.ndarray:
        """Flip + read + clear: the loss-free extraction cycle."""
        self.flip()
        out = self.read_quiescent()
        self.clear_quiescent()
        return out

    # -- introspection ------------------------------------------------

    def bank(self, which: int) -> np.ndarray:
        return self._banks[which].copy()

    def residue_pkts(self) -> List[int]:
        """Packets still held in either bank, per level."""
        return [
            int(self._banks[0][level, :, F_PKTS].sum()
                + self._banks[1][level, :, F_PKTS].sum())
            for level in range(self.levels)
        ]

    def residue_bytes(self) -> List[int]:
        return [
            int(self._banks[0][level, :, F_BYTES].sum()
                + self._banks[1][level, :, F_BYTES].sum())
            for level in range(self.levels)
        ]

    def clear(self) -> None:
        self._banks[0][:] = 0
        self._banks[1][:] = 0
        self.evicted_pkts = [0] * self.levels
        self.evicted_bytes = [0] * self.levels

    def load_banks(self, bank0: np.ndarray, bank1: np.ndarray, active: int,
                   evicted_pkts: List[int] | None = None,
                   evicted_bytes: List[int] | None = None) -> None:
        """Control-plane bulk restore of both banks, the flip phase, and
        the eviction tallies (checkpoint path)."""
        bank0 = np.asarray(bank0, dtype=np.uint64)
        bank1 = np.asarray(bank1, dtype=np.uint64)
        if bank0.shape != self._banks[0].shape or bank1.shape != self._banks[1].shape:
            raise ValueError("time-window bank shape mismatch")
        if active not in (0, 1):
            raise ValueError("active bank must be 0 or 1")
        self._banks[0][:] = bank0
        self._banks[1][:] = bank1
        self.active = active
        if evicted_pkts is not None:
            if len(evicted_pkts) != self.levels:
                raise ValueError("eviction tally level-count mismatch")
            self.evicted_pkts = [int(v) for v in evicted_pkts]
        if evicted_bytes is not None:
            if len(evicted_bytes) != self.levels:
                raise ValueError("eviction tally level-count mismatch")
            self.evicted_bytes = [int(v) for v in evicted_bytes]
