"""P4 meter extern: two-rate three-color marker (RFC 2698 trTCM).

Meters let the data plane classify per-flow rates at line rate without
control-plane involvement — the in-data-plane counterpart of the control
plane's throughput alerts.  ``MeterArray`` models the P4 ``meter`` extern:
one trTCM instance per index, executed per packet.

Colors: GREEN (within CIR), YELLOW (within PIR), RED (above PIR).
Token buckets refill continuously at CIR/PIR with burst caps CBS/PBS.
"""

from __future__ import annotations

from enum import Enum
from typing import List

import numpy as np


class MeterColor(Enum):
    GREEN = 0
    YELLOW = 1
    RED = 2


class MeterArray:
    """Indexed trTCM meters (color-blind mode)."""

    def __init__(
        self,
        name: str,
        size: int,
        cir_bps: int,
        pir_bps: int,
        cbs_bytes: int = 64 * 1024,
        pbs_bytes: int = 128 * 1024,
    ) -> None:
        if size <= 0:
            raise ValueError("meter size must be positive")
        if cir_bps <= 0 or pir_bps < cir_bps:
            raise ValueError("need 0 < CIR <= PIR")
        if cbs_bytes <= 0 or pbs_bytes <= 0:
            raise ValueError("burst sizes must be positive")
        self.name = name
        self.size = size
        self.cir_bps = cir_bps
        self.pir_bps = pir_bps
        self.cbs_bytes = cbs_bytes
        self.pbs_bytes = pbs_bytes
        # Token counts start full; timestamps at 0.
        self._tc = np.full(size, float(cbs_bytes))
        self._tp = np.full(size, float(pbs_bytes))
        self._last_ns = np.zeros(size, dtype=np.int64)
        self.marked = {color: 0 for color in MeterColor}

    def execute(self, index: int, nbytes: int, now_ns: int) -> MeterColor:
        """Meter one packet of ``nbytes`` at time ``now_ns``."""
        elapsed = now_ns - int(self._last_ns[index])
        if elapsed < 0:
            raise ValueError("meter time must not move backwards")
        self._last_ns[index] = now_ns
        self._tc[index] = min(
            self.cbs_bytes, self._tc[index] + elapsed * self.cir_bps / (8 * 1e9)
        )
        self._tp[index] = min(
            self.pbs_bytes, self._tp[index] + elapsed * self.pir_bps / (8 * 1e9)
        )
        if self._tp[index] < nbytes:
            color = MeterColor.RED
        elif self._tc[index] < nbytes:
            self._tp[index] -= nbytes
            color = MeterColor.YELLOW
        else:
            self._tc[index] -= nbytes
            self._tp[index] -= nbytes
            color = MeterColor.GREEN
        self.marked[color] += 1
        return color

    def reset(self, index: int, now_ns: int = 0) -> None:
        self._tc[index] = self.cbs_bytes
        self._tp[index] = self.pbs_bytes
        self._last_ns[index] = now_ns
