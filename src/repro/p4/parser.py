"""The programmable parser.

A P4 parser is a state machine that walks the packet: ethernet → ipv4 →
tcp, extracting header fields.  :class:`HeaderParser` accepts either raw
wire bytes (full fidelity — what a real mirror port delivers) or a
simulator :class:`~repro.netsim.packet.Packet` object (fast path: the
fields are already structured; tests prove both views agree).

Only the fields Algorithm 1 and the monitor use are extracted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.netsim.packet import (
    ETHERTYPE_IPV4,
    F_FIN,
    F_SYN,
    PROTO_TCP,
    FiveTuple,
    Packet,
)
from repro.telemetry import provenance


@dataclass(frozen=True, slots=True)
class ParsedHeaders:
    """The header view handed to the match-action pipeline."""

    src_ip: int
    dst_ip: int
    proto: int
    ip_total_len: int
    ihl: int
    ip_id: int
    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int
    data_offset: int
    ecn: int = 0

    @property
    def five_tuple(self) -> FiveTuple:
        return FiveTuple(self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.proto)

    @property
    def payload_len(self) -> int:
        """Derived exactly as Algorithm 1 derives it:
        ``total_len - 4*ihl - 4*data_offset``."""
        return self.ip_total_len - 4 * self.ihl - 4 * self.data_offset

    @property
    def is_tcp(self) -> bool:
        return self.proto == PROTO_TCP

    @property
    def expected_ack(self) -> int:
        """eACK per Algorithm 1 (SYN/FIN each consume a sequence number)."""
        consumed = self.payload_len
        if self.flags & F_SYN:
            consumed += 1
        if self.flags & F_FIN:
            consumed += 1
        return (self.seq + consumed) & 0xFFFFFFFF


class ParserError(ValueError):
    """Raised when a packet cannot be parsed (non-IPv4, truncated...)."""


class HeaderParser:
    """ethernet → ipv4 → tcp extraction with accept/reject semantics."""

    def __init__(self) -> None:
        self.accepted = 0
        self.rejected = 0
        # Provenance events attach to the packet context the pipeline
        # opened (tracer.event is a no-op outside a traversal).
        self._trace = provenance.tracer()

    def parse(self, packet: Union[Packet, bytes]) -> Optional[ParsedHeaders]:
        """Returns the extracted headers, or None for rejected (non-TCP/
        non-IPv4) packets — a P4 parser would send those to a drop state."""
        try:
            if isinstance(packet, (bytes, bytearray, memoryview)):
                pkt = Packet.from_bytes(bytes(packet))
            else:
                pkt = packet
            if pkt.proto != PROTO_TCP:
                raise ParserError(f"non-TCP protocol {pkt.proto}")
            headers = ParsedHeaders(
                src_ip=pkt.src_ip,
                dst_ip=pkt.dst_ip,
                proto=pkt.proto,
                ip_total_len=pkt.ip_total_len,
                ihl=pkt.ihl,
                ip_id=pkt.ip_id,
                src_port=pkt.src_port,
                dst_port=pkt.dst_port,
                seq=pkt.seq & 0xFFFFFFFF,
                ack=pkt.ack & 0xFFFFFFFF,
                flags=int(pkt.flags),
                window=pkt.window,
                data_offset=pkt.data_offset,
                ecn=pkt.ecn,
            )
        except (ParserError, ValueError) as exc:
            self.rejected += 1
            if self._trace is not None and self._trace._ctx_rec:
                self._trace.event("p4", "parser-reject", "parser",
                                  reason=str(exc))
            return None
        self.accepted += 1
        if self._trace is not None and self._trace._ctx_rec:
            self._trace.event("p4", "parser-accept", "parser")
        return headers
