"""Match-action tables.

The control-plane-populated lookup structures of a P4 pipeline.  Supported
match kinds: exact, LPM, ternary (value/mask, priority ordered), and
range.  An entry binds matched keys to an action (a Python callable
standing in for a compiled action) plus action data.

Lookup cost is O(entries) for ternary/range (as in a TCAM, which *is* a
parallel scan) and O(1) for exact.  The monitor program uses an exact
table for protocol dispatch and a ternary table for TCP packet-type
classification; experiments also use tables to suppress/select flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class MatchKind(Enum):
    EXACT = "exact"
    LPM = "lpm"
    TERNARY = "ternary"
    RANGE = "range"


@dataclass(frozen=True)
class exact:
    value: int


@dataclass(frozen=True)
class lpm:
    value: int
    prefix_len: int
    width_bits: int = 32


@dataclass(frozen=True)
class ternary:
    value: int
    mask: int


@dataclass(frozen=True)
class range_match:
    low: int
    high: int  # inclusive


MatchSpec = Any  # one of the dataclasses above


@dataclass
class TableEntry:
    keys: Tuple[MatchSpec, ...]
    action: Callable[..., Any]
    action_data: tuple = ()
    priority: int = 0
    hits: int = 0

    def matches(self, values: Sequence[int]) -> bool:
        for spec, v in zip(self.keys, values):
            if isinstance(spec, exact):
                if v != spec.value:
                    return False
            elif isinstance(spec, lpm):
                shift = spec.width_bits - spec.prefix_len
                if (v >> shift) != (spec.value >> shift):
                    return False
            elif isinstance(spec, ternary):
                if (v & spec.mask) != (spec.value & spec.mask):
                    return False
            elif isinstance(spec, range_match):
                if not spec.low <= v <= spec.high:
                    return False
            else:
                raise TypeError(f"unknown match spec {spec!r}")
        return True


class MatchActionTable:
    """A single P4 table: keys described by ``match_kinds``, entries added
    by the control plane, a default action for misses."""

    def __init__(
        self,
        name: str,
        match_kinds: Sequence[MatchKind],
        default_action: Optional[Callable[..., Any]] = None,
        default_action_data: tuple = (),
        max_entries: int = 1024,
    ) -> None:
        self.name = name
        self.match_kinds = tuple(match_kinds)
        self.default_action = default_action
        self.default_action_data = default_action_data
        self.max_entries = max_entries
        self._entries: List[TableEntry] = []
        self._exact_index: Optional[Dict[tuple, TableEntry]] = (
            {} if all(k is MatchKind.EXACT for k in self.match_kinds) else None
        )
        self.misses = 0
        self.lookups = 0

    # -- control plane -----------------------------------------------------------

    def _check_specs(self, keys: Tuple[MatchSpec, ...]) -> None:
        if len(keys) != len(self.match_kinds):
            raise ValueError(
                f"table {self.name}: expected {len(self.match_kinds)} keys, got {len(keys)}"
            )
        expected = {
            MatchKind.EXACT: exact,
            MatchKind.LPM: lpm,
            MatchKind.TERNARY: ternary,
            MatchKind.RANGE: range_match,
        }
        for kind, spec in zip(self.match_kinds, keys):
            if not isinstance(spec, expected[kind]):
                raise TypeError(
                    f"table {self.name}: key {spec!r} does not match kind {kind.value}"
                )

    def insert(
        self,
        keys: Tuple[MatchSpec, ...],
        action: Callable[..., Any],
        action_data: tuple = (),
        priority: int = 0,
    ) -> TableEntry:
        self._check_specs(keys)
        if len(self._entries) >= self.max_entries:
            raise RuntimeError(f"table {self.name} is full ({self.max_entries} entries)")
        entry = TableEntry(keys=keys, action=action, action_data=action_data, priority=priority)
        self._entries.append(entry)
        # Highest priority first; stable within equal priorities.
        self._entries.sort(key=lambda e: -e.priority)
        if self._exact_index is not None:
            k = tuple(spec.value for spec in keys)
            if k in self._exact_index:
                self._entries.remove(entry)
                raise ValueError(f"table {self.name}: duplicate exact entry {k}")
            self._exact_index[k] = entry
        return entry

    def remove(self, entry: TableEntry) -> None:
        self._entries.remove(entry)
        if self._exact_index is not None:
            k = tuple(spec.value for spec in entry.keys)
            self._exact_index.pop(k, None)

    def clear(self) -> None:
        self._entries.clear()
        if self._exact_index is not None:
            self._exact_index.clear()

    @property
    def entries(self) -> List[TableEntry]:
        return list(self._entries)

    # -- data plane ---------------------------------------------------------------

    def apply(self, *values: int) -> Any:
        """Look up ``values``; run the matching (or default) action."""
        self.lookups += 1
        if self._exact_index is not None:
            entry = self._exact_index.get(tuple(values))
            if entry is not None:
                entry.hits += 1
                return entry.action(*entry.action_data)
        else:
            for entry in self._entries:
                if entry.matches(values):
                    entry.hits += 1
                    return entry.action(*entry.action_data)
        self.misses += 1
        if self.default_action is not None:
            return self.default_action(*self.default_action_data)
        return None
