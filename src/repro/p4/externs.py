"""Data-plane → control-plane notification externs.

A P4 ``digest`` lets the data plane push a small structured message to
the control plane asynchronously (the monitor uses digests for new
long-flow announcements, microburst events, and flow-termination
reports).  Receivers subscribe per digest name; messages can optionally
be delivered through the simulator's event queue with a latency, which
models the PCIe/driver path of a real switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.netsim.engine import Simulator

DigestReceiver = Callable[[str, dict], None]


@dataclass
class DigestMessage:
    name: str
    payload: dict
    emitted_ns: int


class Digest:
    """One digest stream (e.g. ``"microburst"``)."""

    def __init__(
        self,
        name: str,
        sim: Optional[Simulator] = None,
        latency_ns: int = 0,
        max_queue: int = 100_000,
    ) -> None:
        self.name = name
        self.sim = sim
        self.latency_ns = latency_ns
        self.max_queue = max_queue
        self.receivers: List[DigestReceiver] = []
        self.emitted = 0
        self.dropped = 0
        self.backlog: List[DigestMessage] = []  # kept when nobody listens

    def subscribe(self, receiver: DigestReceiver) -> None:
        self.receivers.append(receiver)
        if self.backlog:
            pending, self.backlog = self.backlog, []
            for msg in pending:
                receiver(self.name, msg.payload)

    def unsubscribe(self, receiver: DigestReceiver) -> None:
        """Detach a receiver; messages emitted afterwards backlog again
        (and replay to the next subscriber — the crash-recovery path)."""
        try:
            self.receivers.remove(receiver)
        except ValueError:
            pass

    def emit(self, **payload: Any) -> None:
        """Data-plane call: push one message."""
        self.emitted += 1
        if not self.receivers:
            if len(self.backlog) >= self.max_queue:
                self.dropped += 1
                return
            now = self.sim.now if self.sim is not None else 0
            self.backlog.append(DigestMessage(self.name, payload, now))
            return
        if self.sim is not None and self.latency_ns > 0:
            self.sim.after(self.latency_ns, self._deliver, payload)
        else:
            self._deliver(payload)

    def _deliver(self, payload: dict) -> None:
        for receiver in self.receivers:
            receiver(self.name, payload)
