"""Hash engines.

Tofino exposes CRC-based hash units; flow IDs in the paper are
``hash(5-tuple)`` and the *reversed* flow ID is the same hash with source
and destination fields swapped (§4).  We provide CRC32 (via zlib, with an
optional reflected-polynomial pure-Python fallback), CRC16, and a packing
helper so the same byte layout feeds every hash — exactly like laying out
a P4 ``hash(..., {fields})`` call.
"""

from __future__ import annotations

import struct
import zlib
from typing import Sequence

from repro.netsim.packet import FiveTuple

_FIVE_TUPLE_FMT = struct.Struct("!IIHHB")


def pack_five_tuple(ft: FiveTuple) -> bytes:
    """Canonical byte layout: src ip, dst ip, src port, dst port, proto."""
    return _FIVE_TUPLE_FMT.pack(ft.src_ip, ft.dst_ip, ft.src_port, ft.dst_port, ft.proto)


def crc32_tuple(ft: FiveTuple) -> int:
    """CRC32 of the canonical 5-tuple layout (the paper's flow ID hash)."""
    return zlib.crc32(pack_five_tuple(ft)) & 0xFFFFFFFF


def crc32_bytes(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _make_crc16_table(poly: int = 0x8005) -> list[int]:
    # Reflected table-driven CRC16 (CRC-16/ARC, poly x^16+x^15+x^2+1).
    reflected_poly = int(f"{poly:016b}"[::-1], 2)
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ reflected_poly if crc & 1 else crc >> 1
        table.append(crc)
    return table


_CRC16_TABLE = _make_crc16_table()


def crc16(data: bytes) -> int:
    """CRC-16/ARC, one of the standard Tofino hash unit polynomials."""
    crc = 0
    for b in data:
        crc = (crc >> 8) ^ _CRC16_TABLE[(crc ^ b) & 0xFF]
    return crc & 0xFFFF


def _mix32(h: int) -> int:
    """murmur3 finalizer: a non-linear 32-bit bijection."""
    h &= 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & 0xFFFFFFFF
    h ^= h >> 16
    return h


class HashEngine:
    """A named hash unit producing indices in ``[0, width)``.

    ``salt = 0`` is the plain CRC index (what a single P4 hash call
    computes).  ``salt != 0`` selects an independent row for multi-row
    structures (count-min sketch): the CRC is passed through a
    salt-keyed multiplicative (murmur-style) finalizer.  The
    multiplication matters — every CRC is GF(2)-linear, so deriving rows
    from CRCs alone (prefix salts, or even two different polynomials
    combined linearly) leaves key pairs whose row-collisions are
    perfectly correlated, degenerating the sketch to depth 1.  Hardware
    escapes this by physically distinct polynomials over wider state; we
    guarantee independence with the non-linear mix.
    """

    def __init__(self, width: int, algorithm: str = "crc32", salt: int = 0) -> None:
        if width <= 0:
            raise ValueError("hash width must be positive")
        self.width = width
        self.algorithm = algorithm
        self.salt = salt
        if algorithm == "crc32":
            self._fn = crc32_bytes
        elif algorithm == "crc16":
            self._fn = crc16
        else:
            raise ValueError(f"unknown hash algorithm {algorithm!r}")

    def index(self, data: bytes) -> int:
        h1 = self._fn(data)
        if self.salt == 0:
            return h1 % self.width
        return _mix32(h1 ^ (self.salt * 0x9E3779B9)) % self.width

    def index_tuple(self, ft: FiveTuple) -> int:
        return self.index(pack_five_tuple(ft))

    def index_fields(self, *fields: int) -> int:
        """Hash a sequence of integer fields (packed as 32-bit words)."""
        return self.index(b"".join(struct.pack("!I", f & 0xFFFFFFFF) for f in fields))
