"""Behavioural model of a P4 programmable data plane.

Models the primitives the paper's Tofino program is built from, with the
semantics a P4 programmer sees:

- :mod:`repro.p4.hashes` — CRC hash engines (flow IDs, register indices);
- :mod:`repro.p4.registers` — stateful register arrays and counters
  (numpy-backed, fixed width, index-checked);
- :mod:`repro.p4.sketch` — the count-min sketch used for long-flow
  detection (§4, Cormode & Muthukrishnan);
- :mod:`repro.p4.tables` — match-action tables (exact/LPM/ternary/range);
- :mod:`repro.p4.parser` — header parser over either simulator packets or
  real wire-format bytes;
- :mod:`repro.p4.pipeline` — ingress/egress pipeline scaffolding and
  standard metadata;
- :mod:`repro.p4.externs` — digests (data-plane → control-plane
  notifications);
- :mod:`repro.p4.runtime` — a P4Runtime-like control API over a named
  program's objects.
"""

from repro.p4.hashes import HashEngine, crc16, crc32_tuple
from repro.p4.registers import Counter, RegisterArray
from repro.p4.sketch import CountMinSketch
from repro.p4.tables import MatchActionTable, MatchKind, TableEntry, exact, lpm, ternary, range_match
from repro.p4.parser import HeaderParser, ParsedHeaders
from repro.p4.pipeline import P4Pipeline, StandardMetadata
from repro.p4.externs import Digest, DigestReceiver
from repro.p4.runtime import P4Program, P4RuntimeClient

__all__ = [
    "HashEngine",
    "crc16",
    "crc32_tuple",
    "Counter",
    "RegisterArray",
    "CountMinSketch",
    "MatchActionTable",
    "MatchKind",
    "TableEntry",
    "exact",
    "lpm",
    "ternary",
    "range_match",
    "HeaderParser",
    "ParsedHeaders",
    "P4Pipeline",
    "StandardMetadata",
    "Digest",
    "DigestReceiver",
    "P4Program",
    "P4RuntimeClient",
]
