"""In-band Network Telemetry (INT) — the related-work baseline.

Bezerra et al. (paper §6) monitor AmLight with INT: every *transit*
switch embeds per-hop metadata (switch id, timestamp, queue depth, hop
latency estimate) into the packets themselves, and a *sink* extracts the
stack and reports it to a collector.

This is the architectural opposite of the paper's passive TAP design:
INT sees every hop's queue from the inside, but it grows every packet by
``Packet.INT_HOP_BYTES`` per hop — overhead carried by the very traffic
being measured.  The ``int_overhead`` ablation/benchmark quantifies that
trade-off against the zero-overhead TAP monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.netsim.engine import Simulator
from repro.netsim.host import Host, Node
from repro.netsim.link import Port
from repro.netsim.packet import Packet
from repro.netsim.switch import LegacySwitch
from repro.netsim.units import NS_PER_S


@dataclass(frozen=True, slots=True)
class IntHopMetadata:
    """One INT-MD stack entry, as a transit switch writes it."""

    switch_id: int
    ingress_timestamp_ns: int
    queue_depth_bytes: int
    hop_latency_ns: int


class IntTransitSwitch(LegacySwitch):
    """A programmable forwarding switch in INT transit mode: forwards
    like the legacy switch, but pushes an :class:`IntHopMetadata` entry
    onto every payload-carrying packet it forwards.

    The hop-latency field is the queueing estimate available at enqueue
    time (waiting bytes / drain rate) plus the packet's own
    serialisation — what INT-MD's hop-latency reports on real silicon.
    """

    def __init__(self, sim: Simulator, name: str, switch_id: int,
                 int_data_only: bool = True) -> None:
        super().__init__(sim, name)
        self.switch_id = switch_id
        self.int_data_only = int_data_only
        self.int_entries_written = 0

    def receive(self, pkt: Packet, port: Port) -> None:
        self.rx_packets += 1
        now = self.sim.now
        for mirror in self.ingress_mirrors:
            mirror(pkt, now)
        out = self.route_for(pkt.dst_ip)
        if out is None:
            self.no_route_drops += 1
            return
        if not self.int_data_only or pkt.payload_len > 0:
            queue_depth = out.queued_bytes
            hop_latency = (
                (queue_depth + pkt.wire_len) * 8 * NS_PER_S // out.rate_bps
            )
            entry = IntHopMetadata(
                switch_id=self.switch_id,
                ingress_timestamp_ns=now,
                queue_depth_bytes=queue_depth,
                hop_latency_ns=hop_latency,
            )
            if pkt.int_stack is None:
                pkt.int_stack = [entry]
            else:
                pkt.int_stack.append(entry)
            pkt.recompute_wire_len()
            self.int_entries_written += 1
        out.send(pkt)


@dataclass
class IntPostcard:
    """What the sink exports to the collector for one packet."""

    timestamp_ns: int
    flow_key: Tuple[int, int, int, int, int]
    hops: Tuple[IntHopMetadata, ...]

    @property
    def path_latency_ns(self) -> int:
        return sum(h.hop_latency_ns for h in self.hops)

    @property
    def max_queue_depth_bytes(self) -> int:
        return max((h.queue_depth_bytes for h in self.hops), default=0)


class IntSink:
    """Strips INT stacks at the receiving edge and feeds a collector.

    Attach to the destination host; in hardware this is the last INT
    hop's egress deparser.
    """

    def __init__(self, sim: Simulator, host: Host,
                 collector: Optional["IntCollector"] = None) -> None:
        self.sim = sim
        # Explicit None check: an empty collector is falsy via __len__.
        self.collector = collector if collector is not None else IntCollector()
        host.rx_hooks.append(self._on_packet)

    def _on_packet(self, pkt: Packet, ts_ns: int) -> None:
        if not pkt.int_stack:
            return
        hops = tuple(pkt.int_stack)
        pkt.int_stack = None  # stripped before the application sees it
        pkt.recompute_wire_len()
        self.collector.ingest(IntPostcard(
            timestamp_ns=ts_ns,
            flow_key=(pkt.src_ip, pkt.dst_ip, pkt.src_port, pkt.dst_port, pkt.proto),
            hops=hops,
        ))


class IntCollector:
    """Aggregates postcards: per-switch queue-depth series and per-flow
    path latency — the AmLight collector's role."""

    def __init__(self) -> None:
        self.postcards: List[IntPostcard] = []
        self.per_switch_queue: Dict[int, List[Tuple[int, int]]] = {}

    def ingest(self, postcard: IntPostcard) -> None:
        self.postcards.append(postcard)
        for hop in postcard.hops:
            self.per_switch_queue.setdefault(hop.switch_id, []).append(
                (hop.ingress_timestamp_ns, hop.queue_depth_bytes)
            )

    def __len__(self) -> int:
        return len(self.postcards)

    def max_queue_depth(self, switch_id: int) -> int:
        return max((d for _, d in self.per_switch_queue.get(switch_id, [])),
                   default=0)

    def path_latency_series(self, flow_key=None) -> List[Tuple[int, int]]:
        return [
            (p.timestamp_ns, p.path_latency_ns)
            for p in self.postcards
            if flow_key is None or p.flow_key == flow_key
        ]

    def telemetry_overhead_bytes(self) -> int:
        """Extra on-wire bytes this collector's postcards cost."""
        return sum(Packet.INT_HOP_BYTES * len(p.hops) for p in self.postcards)
