"""Pipeline scaffolding: standard metadata and the ingress/egress block
structure of a P4 target (§2.3: parser → ingress → egress → deparser).

The monitor program (:mod:`repro.core.monitor`) subclasses
:class:`PipelineStage` for each logical table/ALU group; the
:class:`P4Pipeline` runs them in order, short-circuiting when a stage
drops the packet.  This keeps each concern (flow tracking, RTT, queue,
microburst, limiter) in its own testable unit, mirroring how the P4
source would be organised into control blocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro import telemetry
from repro.p4.parser import HeaderParser, ParsedHeaders
from repro.telemetry import provenance


@dataclass
class StandardMetadata:
    """Per-packet intrinsic metadata, as a P4 target provides it."""

    ingress_port: int = 0
    ingress_timestamp_ns: int = 0
    # For egress-TAP copies: which tapped queue the packet left through.
    egress_port_id: int = 0
    # Populated by the queue-monitor stage for egress-TAP copies: the time
    # the packet spent inside the tapped legacy switch.
    queue_delay_ns: int = -1
    # Monitor-specific scratch shared between stages (P4 user metadata).
    flow_id: int = -1
    rev_flow_id: int = -1
    flow_slot: int = -1
    is_long_flow: bool = False
    drop: bool = False


class PipelineStage:
    """One control block.  Override :meth:`process`."""

    name = "stage"

    def process(self, hdr: ParsedHeaders, meta: StandardMetadata) -> None:
        raise NotImplementedError


class P4Pipeline:
    """Parser + ordered ingress stages + ordered egress stages."""

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self.parser = HeaderParser()
        self.ingress: List[PipelineStage] = []
        self.egress: List[PipelineStage] = []
        self.packets_in = 0
        self.packets_dropped = 0
        # Instrumentation is bound at construction: when telemetry is off
        # the per-packet cost is one ``is None`` test in process().
        self._trace = provenance.tracer()
        self._tel_stage_pkts = None
        if telemetry.enabled():
            self._tel_stage_pkts = telemetry.counter(
                "repro_p4_stage_packets_total",
                "packets entering each pipeline stage",
                labels=("pipeline", "stage"))
            self._tel_stage_drops = telemetry.counter(
                "repro_p4_stage_drops_total",
                "packets dropped by each stage (parser rejects included)",
                labels=("pipeline", "stage"))
            self._tel_latency = telemetry.histogram(
                "repro_p4_packet_ns",
                "wall-clock processing time per packet through the pipeline",
                labels=("pipeline",)).labels(name)
            self._tel_parser = self._tel_stage_pkts.labels(name, "parser")
            self._tel_stage_cells: List = []

    def _tel_stage(self, stage: PipelineStage):
        cell = self._tel_stage_pkts.labels(self.name, stage.name)
        self._tel_stage_cells.append(cell)
        return cell

    def add_ingress(self, stage: PipelineStage) -> None:
        self.ingress.append(stage)
        if self._tel_stage_pkts is not None:
            self._tel_stage(stage)

    def add_egress(self, stage: PipelineStage) -> None:
        self.egress.append(stage)
        if self._tel_stage_pkts is not None:
            self._tel_stage(stage)

    def process(self, packet, meta: StandardMetadata) -> Optional[ParsedHeaders]:
        """Run one packet through parse → ingress → egress.

        Returns the parsed headers (None if the parser rejected or a
        stage dropped it).
        """
        if self._trace is not None and getattr(packet, "uid", None) is not None:
            return self._process_traced(packet, meta)
        if self._tel_stage_pkts is not None:
            return self._process_instrumented(packet, meta)
        self.packets_in += 1
        hdr = self.parser.parse(packet)
        if hdr is None:
            self.packets_dropped += 1
            return None
        for stage in self.ingress:
            stage.process(hdr, meta)
            if meta.drop:
                self.packets_dropped += 1
                return None
        for stage in self.egress:
            stage.process(hdr, meta)
            if meta.drop:
                self.packets_dropped += 1
                return None
        return hdr

    def _process_instrumented(self, packet, meta: StandardMetadata) -> Optional[ParsedHeaders]:
        """Telemetry twin of :meth:`process`: per-stage packet/drop
        counters plus a wall-clock latency histogram per packet."""
        t0 = time.perf_counter_ns()
        self.packets_in += 1
        self._tel_parser.inc()
        hdr = self.parser.parse(packet)
        if hdr is None:
            self.packets_dropped += 1
            self._tel_stage_drops.labels(self.name, "parser").inc()
            self._tel_latency.observe(time.perf_counter_ns() - t0)
            return None
        cells = self._tel_stage_cells
        i = 0
        for block in (self.ingress, self.egress):
            for stage in block:
                cells[i].inc()
                i += 1
                stage.process(hdr, meta)
                if meta.drop:
                    self.packets_dropped += 1
                    self._tel_stage_drops.labels(self.name, stage.name).inc()
                    self._tel_latency.observe(time.perf_counter_ns() - t0)
                    return None
        self._tel_latency.observe(time.perf_counter_ns() - t0)
        return hdr

    def _process_traced(self, packet, meta: StandardMetadata) -> Optional[ParsedHeaders]:
        """Provenance twin of :meth:`process`: opens the packet context so
        the parser, every stage, and the registers/sketches they touch
        attribute their events to this packet — while still feeding the
        telemetry counters when both subsystems are enabled."""
        trace = self._trace
        tel = self._tel_stage_pkts is not None
        t0 = time.perf_counter_ns() if tel else 0
        trace.begin_packet(packet, meta.ingress_timestamp_ns)
        # Unsampled packets skip the per-stage event calls entirely — the
        # coarse-only overhead budget in benchmarks/test_trace_overhead.py
        # rides on this flag.
        rec = trace._ctx_rec
        try:
            self.packets_in += 1
            if tel:
                self._tel_parser.inc()
            hdr = self.parser.parse(packet)
            if hdr is None:
                self.packets_dropped += 1
                if tel:
                    self._tel_stage_drops.labels(self.name, "parser").inc()
                    self._tel_latency.observe(time.perf_counter_ns() - t0)
                return None
            i = 0
            for block in (self.ingress, self.egress):
                for stage in block:
                    if tel:
                        self._tel_stage_cells[i].inc()
                    i += 1
                    if rec:
                        trace.event("p4", "stage", stage.name)
                    stage.process(hdr, meta)
                    if meta.drop:
                        self.packets_dropped += 1
                        if rec:
                            trace.event("p4", "stage-drop", stage.name)
                        if tel:
                            self._tel_stage_drops.labels(self.name, stage.name).inc()
                            self._tel_latency.observe(time.perf_counter_ns() - t0)
                        return None
            if tel:
                self._tel_latency.observe(time.perf_counter_ns() - t0)
            return hdr
        finally:
            trace.end_packet()
