"""Pipeline scaffolding: standard metadata and the ingress/egress block
structure of a P4 target (§2.3: parser → ingress → egress → deparser).

The monitor program (:mod:`repro.core.monitor`) subclasses
:class:`PipelineStage` for each logical table/ALU group; the
:class:`P4Pipeline` runs them in order, short-circuiting when a stage
drops the packet.  This keeps each concern (flow tracking, RTT, queue,
microburst, limiter) in its own testable unit, mirroring how the P4
source would be organised into control blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.p4.parser import HeaderParser, ParsedHeaders


@dataclass
class StandardMetadata:
    """Per-packet intrinsic metadata, as a P4 target provides it."""

    ingress_port: int = 0
    ingress_timestamp_ns: int = 0
    # For egress-TAP copies: which tapped queue the packet left through.
    egress_port_id: int = 0
    # Populated by the queue-monitor stage for egress-TAP copies: the time
    # the packet spent inside the tapped legacy switch.
    queue_delay_ns: int = -1
    # Monitor-specific scratch shared between stages (P4 user metadata).
    flow_id: int = -1
    rev_flow_id: int = -1
    flow_slot: int = -1
    is_long_flow: bool = False
    drop: bool = False


class PipelineStage:
    """One control block.  Override :meth:`process`."""

    name = "stage"

    def process(self, hdr: ParsedHeaders, meta: StandardMetadata) -> None:
        raise NotImplementedError


class P4Pipeline:
    """Parser + ordered ingress stages + ordered egress stages."""

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self.parser = HeaderParser()
        self.ingress: List[PipelineStage] = []
        self.egress: List[PipelineStage] = []
        self.packets_in = 0
        self.packets_dropped = 0

    def add_ingress(self, stage: PipelineStage) -> None:
        self.ingress.append(stage)

    def add_egress(self, stage: PipelineStage) -> None:
        self.egress.append(stage)

    def process(self, packet, meta: StandardMetadata) -> Optional[ParsedHeaders]:
        """Run one packet through parse → ingress → egress.

        Returns the parsed headers (None if the parser rejected or a
        stage dropped it).
        """
        self.packets_in += 1
        hdr = self.parser.parse(packet)
        if hdr is None:
            self.packets_dropped += 1
            return None
        for stage in self.ingress:
            stage.process(hdr, meta)
            if meta.drop:
                self.packets_dropped += 1
                return None
        for stage in self.egress:
            stage.process(hdr, meta)
            if meta.drop:
                self.packets_dropped += 1
                return None
        return hdr
