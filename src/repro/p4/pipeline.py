"""Pipeline scaffolding: standard metadata and the ingress/egress block
structure of a P4 target (§2.3: parser → ingress → egress → deparser).

The monitor program (:mod:`repro.core.monitor`) subclasses
:class:`PipelineStage` for each logical table/ALU group; the
:class:`P4Pipeline` runs them in order, short-circuiting when a stage
drops the packet.  This keeps each concern (flow tracking, RTT, queue,
microburst, limiter) in its own testable unit, mirroring how the P4
source would be organised into control blocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro import telemetry
from repro.p4.parser import HeaderParser, ParsedHeaders
from repro.telemetry import profiling, provenance

_pcn = time.perf_counter_ns


@dataclass
class StandardMetadata:
    """Per-packet intrinsic metadata, as a P4 target provides it."""

    ingress_port: int = 0
    ingress_timestamp_ns: int = 0
    # For egress-TAP copies: which tapped queue the packet left through.
    egress_port_id: int = 0
    # Populated by the queue-monitor stage for egress-TAP copies: the time
    # the packet spent inside the tapped legacy switch.
    queue_delay_ns: int = -1
    # Monitor-specific scratch shared between stages (P4 user metadata).
    flow_id: int = -1
    rev_flow_id: int = -1
    flow_slot: int = -1
    is_long_flow: bool = False
    drop: bool = False


class PipelineStage:
    """One control block.  Override :meth:`process`."""

    name = "stage"

    def process(self, hdr: ParsedHeaders, meta: StandardMetadata) -> None:
        raise NotImplementedError


class P4Pipeline:
    """Parser + ordered ingress stages + ordered egress stages."""

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self.parser = HeaderParser()
        self.ingress: List[PipelineStage] = []
        self.egress: List[PipelineStage] = []
        self.packets_in = 0
        self.packets_dropped = 0
        # Instrumentation is bound at construction: the winning process()
        # body is bound directly below, so disabled modes cost nothing
        # per packet.
        self._trace = provenance.tracer()
        _prof = profiling.profiler()
        self._prof = _prof if (_prof is not None and _prof.phases) else None
        self._tel_stage_pkts = None
        if telemetry.enabled():
            self._tel_stage_pkts = telemetry.counter(
                "repro_p4_stage_packets_total",
                "packets entering each pipeline stage",
                labels=("pipeline", "stage"))
            self._tel_stage_drops = telemetry.counter(
                "repro_p4_stage_drops_total",
                "packets dropped by each stage (parser rejects included)",
                labels=("pipeline", "stage"))
            self._tel_latency = telemetry.histogram(
                "repro_p4_packet_ns",
                "wall-clock processing time per packet through the pipeline",
                labels=("pipeline",)).labels(name)
            self._tel_parser = self._tel_stage_pkts.labels(name, "parser")
            self._tel_stage_cells: List = []
        # Direct-body binding: process() IS the plain body; when
        # instrumentation is on, the winning twin shadows it as an
        # instance attribute.  Disabled thus pays zero per-packet
        # guards and keeps plain class dispatch.  Tracing binds the
        # per-packet dynamic dispatcher (its uid check decides traced
        # vs untraced), and subclasses overriding process() keep
        # their override.
        if self._prof is not None:
            self._proc_cell = self._prof.cell("p4.process")
            self._prof_inner = (self._process_instrumented
                                if self._tel_stage_pkts is not None
                                else self._process_plain)
        if self._prof is not None:
            untraced = (self._process_profiled_stage
                        if self._prof.detail_stage
                        else self._process_profiled_block)
        elif self._tel_stage_pkts is not None:
            untraced = self._process_instrumented
        else:
            untraced = None  # plain body: keep class dispatch
        self._untraced = untraced if untraced is not None else self._process_plain
        if type(self).process is P4Pipeline.process:
            if self._trace is not None:
                self.process = self._process_dispatch
            elif untraced is not None:
                self.process = untraced

    def _tel_stage(self, stage: PipelineStage):
        cell = self._tel_stage_pkts.labels(self.name, stage.name)
        self._tel_stage_cells.append(cell)
        return cell

    def add_ingress(self, stage: PipelineStage) -> None:
        self.ingress.append(stage)
        if self._tel_stage_pkts is not None:
            self._tel_stage(stage)

    def add_egress(self, stage: PipelineStage) -> None:
        self.egress.append(stage)
        if self._tel_stage_pkts is not None:
            self._tel_stage(stage)

    def process(self, packet, meta: StandardMetadata) -> Optional[ParsedHeaders]:
        """Run one packet through parse → ingress → egress.

        Returns the parsed headers (None if the parser rejected or a
        stage dropped it).  This is the uninstrumented body: when any
        instrumentation is on, construction shadows it with the right
        twin as an instance attribute, so the disabled hot path is
        byte-for-byte this method with plain class dispatch.
        """
        self.packets_in += 1
        hdr = self.parser.parse(packet)
        if hdr is None:
            self.packets_dropped += 1
            return None
        for stage in self.ingress:
            stage.process(hdr, meta)
            if meta.drop:
                self.packets_dropped += 1
                return None
        for stage in self.egress:
            stage.process(hdr, meta)
            if meta.drop:
                self.packets_dropped += 1
                return None
        return hdr

    _process_plain = process  # explicit-dispatch alias for the twins

    def _process_dispatch(self, packet, meta: StandardMetadata) -> Optional[ParsedHeaders]:
        """Per-packet dispatch for tracing mode (bound only while the
        tracer is live): traced packets carry a uid, the rest take the
        untraced twin chosen at construction."""
        if getattr(packet, "uid", None) is not None:
            return self._process_traced(packet, meta)
        return self._untraced(packet, meta)

    def _process_instrumented(self, packet, meta: StandardMetadata) -> Optional[ParsedHeaders]:
        """Telemetry twin of :meth:`process`: per-stage packet/drop
        counters plus a wall-clock latency histogram per packet."""
        t0 = time.perf_counter_ns()
        self.packets_in += 1
        self._tel_parser.inc()
        hdr = self.parser.parse(packet)
        if hdr is None:
            self.packets_dropped += 1
            self._tel_stage_drops.labels(self.name, "parser").inc()
            self._tel_latency.observe(time.perf_counter_ns() - t0)
            return None
        cells = self._tel_stage_cells
        i = 0
        for block in (self.ingress, self.egress):
            for stage in block:
                cells[i].inc()
                i += 1
                stage.process(hdr, meta)
                if meta.drop:
                    self.packets_dropped += 1
                    self._tel_stage_drops.labels(self.name, stage.name).inc()
                    self._tel_latency.observe(time.perf_counter_ns() - t0)
                    return None
        self._tel_latency.observe(time.perf_counter_ns() - t0)
        return hdr

    def _process_profiled(self, packet, meta: StandardMetadata) -> Optional[ParsedHeaders]:
        """Profiling twin of :meth:`process`: ``block`` detail charges
        one ``p4.process`` cell per packet (the ≤10 % always-on budget),
        ``stage`` detail opens nested parser and per-stage frames
        (diagnosis mode) — while still feeding the telemetry counters
        when both are enabled."""
        if self._prof.detail_stage:
            return self._process_profiled_stage(packet, meta)
        return self._process_profiled_block(packet, meta)

    def _process_profiled_block(self, packet, meta: StandardMetadata) -> Optional[ParsedHeaders]:
        # Block detail never nests frames inside p4.process, and packets
        # only flow under tap/switch engine events (never inside an open
        # cp.extract/archiver frame), so the frame stack is skipped:
        # two clock reads into the cached cell, self == cum, and
        # nested_ns feeds the engine loop's self-time subtraction.
        t0 = _pcn()
        try:
            return self._prof_inner(packet, meta)
        finally:
            dt = _pcn() - t0
            cell = self._proc_cell
            cell[0] += dt
            cell[1] += dt
            cell[2] += 1
            self._prof.nested_ns += dt

    def _process_profiled_stage(self, packet, meta: StandardMetadata) -> Optional[ParsedHeaders]:
        prof = self._prof
        tel = self._tel_stage_pkts is not None
        t0 = time.perf_counter_ns() if tel else 0
        prof.begin("p4.process")
        try:
            self.packets_in += 1
            if tel:
                self._tel_parser.inc()
            prof.begin("p4.parser")
            try:
                hdr = self.parser.parse(packet)
            finally:
                prof.end()
            if hdr is None:
                self.packets_dropped += 1
                if tel:
                    self._tel_stage_drops.labels(self.name, "parser").inc()
                    self._tel_latency.observe(time.perf_counter_ns() - t0)
                return None
            i = 0
            for block in (self.ingress, self.egress):
                for stage in block:
                    if tel:
                        self._tel_stage_cells[i].inc()
                    i += 1
                    prof.begin("p4.stage/" + stage.name)
                    try:
                        stage.process(hdr, meta)
                    finally:
                        prof.end()
                    if meta.drop:
                        self.packets_dropped += 1
                        if tel:
                            self._tel_stage_drops.labels(self.name, stage.name).inc()
                            self._tel_latency.observe(time.perf_counter_ns() - t0)
                        return None
            if tel:
                self._tel_latency.observe(time.perf_counter_ns() - t0)
            return hdr
        finally:
            prof.end()

    def _process_traced(self, packet, meta: StandardMetadata) -> Optional[ParsedHeaders]:
        """Provenance twin of :meth:`process`: opens the packet context so
        the parser, every stage, and the registers/sketches they touch
        attribute their events to this packet — while still feeding the
        telemetry counters when both subsystems are enabled."""
        trace = self._trace
        tel = self._tel_stage_pkts is not None
        t0 = time.perf_counter_ns() if tel else 0
        trace.begin_packet(packet, meta.ingress_timestamp_ns)
        # Unsampled packets skip the per-stage event calls entirely — the
        # coarse-only overhead budget in benchmarks/test_trace_overhead.py
        # rides on this flag.
        rec = trace._ctx_rec
        try:
            self.packets_in += 1
            if tel:
                self._tel_parser.inc()
            hdr = self.parser.parse(packet)
            if hdr is None:
                self.packets_dropped += 1
                if tel:
                    self._tel_stage_drops.labels(self.name, "parser").inc()
                    self._tel_latency.observe(time.perf_counter_ns() - t0)
                return None
            i = 0
            for block in (self.ingress, self.egress):
                for stage in block:
                    if tel:
                        self._tel_stage_cells[i].inc()
                    i += 1
                    if rec:
                        trace.event("p4", "stage", stage.name)
                    stage.process(hdr, meta)
                    if meta.drop:
                        self.packets_dropped += 1
                        if rec:
                            trace.event("p4", "stage-drop", stage.name)
                        if tel:
                            self._tel_stage_drops.labels(self.name, stage.name).inc()
                            self._tel_latency.observe(time.perf_counter_ns() - t0)
                        return None
            if tel:
                self._tel_latency.observe(time.perf_counter_ns() - t0)
            return hdr
        finally:
            trace.end_packet()
