"""Count-min sketch (Cormode & Muthukrishnan 2005).

The paper's data plane "detects long flows using count-min sketches"
before allocating one of the 2048 per-flow register slots (§4).  The
sketch is ``depth`` rows of ``width`` counters; each row has its own
hash unit.  Standard CMS guarantees: estimate >= true count, and
``P[estimate > true + eps*N] <= delta`` for ``width = ceil(e/eps)``,
``depth = ceil(ln(1/delta))``.

``conservative`` enables conservative update (only raise the minimum
cells), which reduces overestimation at no asymptotic cost — a common
data-plane refinement and one of our ablation knobs.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.netsim.packet import FiveTuple
from repro.p4.hashes import HashEngine, pack_five_tuple
from repro.telemetry import provenance


class CountMinSketch:
    def __init__(
        self,
        width: int = 4096,
        depth: int = 3,
        conservative: bool = False,
        algorithm: str = "crc32",
    ) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self.conservative = conservative
        self._rows = np.zeros((depth, width), dtype=np.uint64)
        self._hashes = [HashEngine(width, algorithm=algorithm, salt=row) for row in range(depth)]
        # Plain-int op tallies, pulled by the telemetry collector.
        self.updates = 0
        self.queries = 0
        self._trace = provenance.tracer()

    # -- data-plane operations ----------------------------------------------

    def _indices(self, key: bytes) -> list[int]:
        return [h.index(key) for h in self._hashes]

    def update(self, key: bytes, amount: int = 1) -> int:
        """Add ``amount``; returns the post-update estimate."""
        if amount < 0:
            raise ValueError("CMS is additive-only")
        self.updates += 1
        idx = self._indices(key)
        if self.conservative:
            current = min(int(self._rows[r, i]) for r, i in enumerate(idx))
            target = current + amount
            for r, i in enumerate(idx):
                if self._rows[r, i] < target:
                    self._rows[r, i] = target
            if self._trace is not None and self._trace._ctx_rec:
                self._trace.event("register", "sketch-update", "cms",
                                  amount=amount, estimate=target)
            return target
        est = None
        for r, i in enumerate(idx):
            v = int(self._rows[r, i]) + amount
            self._rows[r, i] = v
            est = v if est is None else min(est, v)
        if self._trace is not None and self._trace._ctx_rec:
            self._trace.event("register", "sketch-update", "cms",
                              amount=amount, estimate=int(est))
        return int(est)

    def query(self, key: bytes) -> int:
        self.queries += 1
        return min(int(self._rows[r, i]) for r, i in enumerate(self._indices(key)))

    def update_tuple(self, ft: FiveTuple, amount: int = 1) -> int:
        return self.update(pack_five_tuple(ft), amount)

    def query_tuple(self, ft: FiveTuple) -> int:
        return self.query(pack_five_tuple(ft))

    # -- control-plane operations ---------------------------------------------

    def snapshot(self) -> np.ndarray:
        """Copy of the full (depth, width) counter matrix."""
        return self._rows.copy()

    def load(self, rows: np.ndarray) -> None:
        """Control-plane bulk restore of the counter matrix (checkpoint
        path) — hash engines are derived from geometry, not state."""
        rows = np.asarray(rows, dtype=np.uint64)
        if rows.shape != self._rows.shape:
            raise ValueError("sketch matrix shape mismatch")
        self._rows[:] = rows

    def clear(self) -> None:
        self._rows[:] = 0

    def total(self) -> int:
        """Total inserted amount (row sums are all equal in plain mode)."""
        return int(self._rows[0].sum())

    def error_bound(self, confidence_rows: Iterable[int] | None = None) -> float:
        """The classical additive error bound e/width * N."""
        return float(np.e / self.width * self.total())

    def memory_cells(self) -> int:
        return self.width * self.depth
