"""repro — reproduction of "Enhancing perfSONAR Measurement Capabilities
using P4 Programmable Data Planes" (Mazloum et al., SC-W 2023).

The package provides, in pure Python (numpy for hot state):

- :mod:`repro.netsim` — a nanosecond-resolution discrete-event network
  simulator: links, store-and-forward switches with tail-drop FIFO queues,
  passive optical TAPs, and impairment shims.
- :mod:`repro.tcp` — a packet-level TCP implementation (Reno/CUBIC, fast
  retransmit, RTO, receiver window, application pacing) plus iPerf3-like
  traffic applications.
- :mod:`repro.p4` — a behavioural model of a P4 programmable data plane:
  parser over wire-format bytes, match-action tables, stateful registers,
  CRC hash engines, and a count-min sketch, with a P4Runtime-like control
  API.
- :mod:`repro.core` — the paper's contribution: the passive per-flow
  monitor program (throughput, RTT, loss, queue occupancy), microburst
  detection, sender/receiver-vs-network limitation classification, and the
  control plane with configurable reporting intervals and alert thresholds.
- :mod:`repro.perfsonar` — a perfSONAR substrate: active measurement tools,
  pScheduler, the pSConfig ``config-P4`` extension, a Logstash-like
  pipeline and an OpenSearch-like archive.
- :mod:`repro.mmwave` — a 60 GHz mmWave link model with LOS blockage and
  the three blockage detectors compared in the paper (P4 IAT-based,
  throughput-based, RSSI-based).
- :mod:`repro.experiments` — one runnable scenario per paper table/figure.

Quickstart::

    from repro.experiments.fig9_perflow import run_fig9
    result = run_fig9(duration_s=20.0)
    print(result.summary())
"""

import logging
from typing import Optional, TextIO

from repro._version import __version__

__all__ = ["__version__", "configure_logging"]

# Library convention: stay silent unless the application configures a
# handler (the CLI does, via --verbose/--quiet).
logging.getLogger("repro").addHandler(logging.NullHandler())


def configure_logging(level: int = logging.INFO,
                      stream: Optional[TextIO] = None) -> logging.Logger:
    """Attach one stream handler (stderr by default) to the ``repro``
    logger.  Idempotent: calling again replaces the previous handler, so
    tests and repeated CLI invocations don't stack duplicates."""
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if not isinstance(handler, logging.NullHandler):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(
        "%(asctime)s %(levelname)-7s %(name)s: %(message)s", "%H:%M:%S"))
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger
