"""Constant-bit-rate traffic and throughput metering for the mmWave
experiments.

Figs. 13-14 plot per-packet IAT and throughput of a steady stream across
the mmWave hop; a paced UDP-style sender gives the cleanest view of the
channel itself (TCP dynamics would convolve congestion control into the
detection-latency comparison)."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.netsim.engine import Simulator
from repro.netsim.host import Host
from repro.netsim.packet import PROTO_UDP, Packet
from repro.netsim.units import NS_PER_S


class CbrSender:
    """Paced constant-rate sender (UDP-like, proto 17)."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst_ip: int,
        rate_bps: int,
        payload_len: int = 1400,
        dst_port: int = 9000,
        start_ns: int = 0,
        stop_ns: Optional[int] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.host = host
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.rate_bps = rate_bps
        self.payload_len = payload_len
        self.stop_ns = stop_ns
        self.packets_sent = 0
        self._seq = 0
        self.interval_ns = max(1, payload_len * 8 * NS_PER_S // rate_bps)
        sim.at(max(start_ns, sim.now), self._send)

    def _send(self) -> None:
        if self.stop_ns is not None and self.sim.now >= self.stop_ns:
            return
        pkt = Packet(
            src_ip=self.host.ip,
            dst_ip=self.dst_ip,
            src_port=9000,
            dst_port=self.dst_port,
            seq=self._seq,
            proto=PROTO_UDP,
            payload_len=self.payload_len,
            created_ns=self.sim.now,
        )
        self._seq += 1
        self.packets_sent += 1
        self.host.send(pkt)
        self.sim.after(self.interval_ns, self._send)


class ThroughputMeter:
    """Receiver-side byte counter with an interval series and per-packet
    arrival log (the IAT source for Fig. 13)."""

    def __init__(self, sim: Simulator, host: Host, interval_ns: int = NS_PER_S // 10) -> None:
        self.sim = sim
        self.host = host
        self.interval_ns = interval_ns
        self.total_bytes = 0
        self.arrivals_ns: List[int] = []
        self.intervals: List[Tuple[int, float]] = []  # (end_ns, bps)
        self._interval_bytes = 0
        host.rx_hooks.append(self._on_packet)
        sim.after(interval_ns, self._tick)

    def _on_packet(self, pkt: Packet, ts_ns: int) -> None:
        if pkt.proto != PROTO_UDP:
            return
        self.total_bytes += pkt.payload_len
        self._interval_bytes += pkt.payload_len
        self.arrivals_ns.append(ts_ns)

    def _tick(self) -> None:
        bps = self._interval_bytes * 8 * NS_PER_S / self.interval_ns
        self.intervals.append((self.sim.now, bps))
        self._interval_bytes = 0
        self.sim.after(self.interval_ns, self._tick)

    def inter_arrival_times(self) -> List[Tuple[int, int]]:
        """(arrival time, IAT) pairs, both ns — the Fig. 13 series."""
        arr = self.arrivals_ns
        return [(arr[i], arr[i] - arr[i - 1]) for i in range(1, len(arr))]

    def throughput_series_mbps(self) -> List[Tuple[float, float]]:
        return [(t / NS_PER_S, bps / 1e6) for t, bps in self.intervals]
