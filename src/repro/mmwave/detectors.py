"""The three blockage-detection systems of Fig. 14.

All three call a :class:`~repro.mmwave.handover.HandoverController` when
they decide the LOS is blocked; the experiment measures how long each
takes from blockage onset to trigger and how the stream's throughput
recovers.

- :class:`IatDetector` — the P4 system: per-packet inter-arrival time
  kept in data-plane registers, EWMA baseline, trigger on the first IAT
  that exceeds ``factor × baseline``.  Reaction time is one (inflated)
  packet gap.
- :class:`ThroughputDetector` — a controller polling receive counters at
  a fixed period; triggers when the measured rate falls below a fraction
  of the expected rate.  Reaction is at least one polling period plus the
  time the degradation needs to dominate the counter window.
- :class:`RssiDetector` — off-the-shelf behaviour: periodic noisy RSSI
  samples, EWMA smoothing, trigger after ``consecutive_required`` smoothed
  samples below threshold (averaging is what makes it slowest).
"""

from __future__ import annotations

from typing import List, Optional

from repro.netsim.engine import Simulator
from repro.netsim.host import Host
from repro.netsim.packet import PROTO_UDP, Packet
from repro.netsim.units import NS_PER_S
from repro.p4.registers import RegisterArray
from repro.mmwave.channel import MmWaveLink
from repro.mmwave.handover import HandoverController


class IatDetector:
    """P4 data-plane IAT watchdog.

    State lives in two registers (last arrival timestamp, EWMA of the
    IAT) exactly as the P4 implementation in [26] keeps them; the EWMA
    uses a shift-friendly alpha (1/8)."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        controller: HandoverController,
        factor: float = 8.0,
        min_gap_ns: int = 50_000,
        warmup_packets: int = 20,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.factor = factor
        self.min_gap_ns = min_gap_ns
        self.warmup_packets = warmup_packets
        self.last_ts = RegisterArray("iat_last_ts", 1, 48)
        self.ewma = RegisterArray("iat_ewma", 1, 48)
        self.packets_seen = 0
        self.triggered_at_ns: Optional[int] = None
        host.rx_hooks.append(self._on_packet)

    def _on_packet(self, pkt: Packet, ts_ns: int) -> None:
        if pkt.proto != PROTO_UDP:
            return
        last = self.last_ts.read(0)
        self.last_ts.write(0, ts_ns)
        self.packets_seen += 1
        if last == 0 or self.packets_seen <= self.warmup_packets:
            return
        iat = ts_ns - last
        baseline = self.ewma.read(0)
        if baseline == 0:
            self.ewma.write(0, iat)
            return
        threshold = max(int(self.factor * baseline), self.min_gap_ns)
        if iat > threshold and self.triggered_at_ns is None:
            self.triggered_at_ns = ts_ns
            self.controller.trigger("iat", ts_ns)
            return
        # EWMA with alpha = 1/8 (a shift in the data plane).
        self.ewma.write(0, baseline + (iat - baseline) // 8)


class ThroughputDetector:
    """Controller polling the receiver's byte counter."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        controller: HandoverController,
        expected_rate_bps: int,
        poll_interval_ns: int = NS_PER_S // 2,
        degradation_fraction: float = 0.5,
        warmup_polls: int = 2,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.expected_rate_bps = expected_rate_bps
        self.poll_interval_ns = poll_interval_ns
        self.degradation_fraction = degradation_fraction
        self.warmup_polls = warmup_polls
        self._bytes = 0
        self._polls = 0
        self.triggered_at_ns: Optional[int] = None
        host.rx_hooks.append(self._on_packet)
        sim.after(poll_interval_ns, self._poll)

    def _on_packet(self, pkt: Packet, ts_ns: int) -> None:
        if pkt.proto == PROTO_UDP:
            self._bytes += pkt.payload_len

    def _poll(self) -> None:
        rate = self._bytes * 8 * NS_PER_S / self.poll_interval_ns
        self._bytes = 0
        self._polls += 1
        if (
            self._polls > self.warmup_polls
            and rate < self.degradation_fraction * self.expected_rate_bps
            and self.triggered_at_ns is None
        ):
            self.triggered_at_ns = self.sim.now
            self.controller.trigger("throughput", self.sim.now)
        self.sim.after(self.poll_interval_ns, self._poll)


class RssiDetector:
    """Off-the-shelf RSSI watcher: EWMA of noisy samples, trigger after
    ``consecutive_required`` smoothed readings below threshold."""

    def __init__(
        self,
        sim: Simulator,
        link: MmWaveLink,
        controller: HandoverController,
        threshold_dbm: float = -65.0,
        sample_interval_ns: int = NS_PER_S // 10,
        alpha: float = 0.2,
        consecutive_required: int = 10,
    ) -> None:
        self.sim = sim
        self.link = link
        self.controller = controller
        self.threshold_dbm = threshold_dbm
        self.sample_interval_ns = sample_interval_ns
        self.alpha = alpha
        self.consecutive_required = consecutive_required
        self._ewma: Optional[float] = None
        self._below = 0
        self.samples: List[tuple] = []
        self.triggered_at_ns: Optional[int] = None
        sim.after(sample_interval_ns, self._sample)

    def _sample(self) -> None:
        reading = self.link.rssi_dbm()
        self._ewma = (
            reading if self._ewma is None
            else (1 - self.alpha) * self._ewma + self.alpha * reading
        )
        self.samples.append((self.sim.now, reading, self._ewma))
        if self._ewma < self.threshold_dbm:
            self._below += 1
            if self._below >= self.consecutive_required and self.triggered_at_ns is None:
                self.triggered_at_ns = self.sim.now
                self.controller.trigger("rssi", self.sim.now)
        else:
            self._below = 0
        self.sim.after(self.sample_interval_ns, self._sample)
