"""Handover reaction: steer the beam to a backup (reflected) path.

A detector calls :meth:`HandoverController.trigger`; after the radio's
beam-switch latency the link is steered to the backup path, restoring
most of the nominal rate even while the LOS remains blocked.  The
controller records the trigger for the Fig. 14 latency comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.netsim.engine import Simulator
from repro.mmwave.channel import MmWaveLink


@dataclass
class HandoverRecord:
    reason: str
    triggered_ns: int
    completed_ns: int


class HandoverController:
    def __init__(
        self,
        sim: Simulator,
        link: MmWaveLink,
        switch_latency_ns: int = 10_000_000,  # ~10 ms beam retraining
        backup_rate_fraction: float = 0.9,
    ) -> None:
        self.sim = sim
        self.link = link
        self.switch_latency_ns = switch_latency_ns
        self.backup_rate_fraction = backup_rate_fraction
        self.records: List[HandoverRecord] = []
        self._in_progress = False

    def trigger(self, reason: str, now_ns: int) -> None:
        if self._in_progress:
            return
        self._in_progress = True
        self.sim.after(self.switch_latency_ns, self._complete, reason, now_ns)

    def _complete(self, reason: str, triggered_ns: int) -> None:
        self.link.steer_to_backup(self.backup_rate_fraction)
        self.records.append(
            HandoverRecord(reason=reason, triggered_ns=triggered_ns,
                           completed_ns=self.sim.now)
        )
        self._in_progress = False

    @property
    def first_trigger_ns(self) -> Optional[int]:
        return self.records[0].triggered_ns if self.records else None
