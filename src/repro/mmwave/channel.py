"""mmWave link with LOS blockage and an RSSI observable.

The link is a normal point-to-point connection whose port rates collapse
to ``blocked_rate_fraction`` of nominal while a blockage is active (the
beam energy that still arrives via reflections), and whose RSSI drops by
``blockage_attenuation_db``.  RSSI readings carry Gaussian measurement
noise, which is exactly what forces RSSI-based detectors to average
(and therefore react late) — the Fig. 14 comparison hinges on this.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.netsim.engine import Simulator
from repro.netsim.host import Node
from repro.netsim.link import Link, Port


@dataclass
class BlockageSchedule:
    """Planned LOS blockages: (start_ns, duration_ns) pairs."""

    events: List[Tuple[int, int]]

    def validate(self) -> None:
        last_end = -1
        for start, duration in self.events:
            if start < 0 or duration <= 0:
                raise ValueError("blockage events need start >= 0 and duration > 0")
            if start < last_end:
                raise ValueError("blockage events must not overlap")
            last_end = start + duration


class MmWaveLink:
    """A blockage-capable link between two nodes."""

    def __init__(
        self,
        sim: Simulator,
        node_a: Node,
        node_b: Node,
        rate_bps: int,
        delay_ns: int = 5_000,           # short reach, ~1 m + processing
        queue_bytes: int = 2 * 1024 * 1024,
        blocked_rate_fraction: float = 0.01,
        baseline_rssi_dbm: float = -52.0,
        blockage_attenuation_db: float = 25.0,
        rssi_noise_db: float = 2.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 < blocked_rate_fraction <= 1.0:
            raise ValueError("blocked_rate_fraction must be in (0, 1]")
        self.sim = sim
        self.nominal_rate_bps = rate_bps
        self.blocked_rate_bps = max(1, round(rate_bps * blocked_rate_fraction))
        self.baseline_rssi_dbm = baseline_rssi_dbm
        self.blockage_attenuation_db = blockage_attenuation_db
        self.rssi_noise_db = rssi_noise_db
        self._rng = random.Random(seed)

        self.port_a = node_a.new_port(rate_bps, queue_bytes)
        self.port_b = node_b.new_port(rate_bps, queue_bytes)
        self.link = Link(sim, self.port_a, self.port_b, delay_ns, name="mmwave")

        self.blocked = False
        self.blockage_count = 0
        self._restored_rate: Optional[int] = None  # handover override

    # -- blockage dynamics ---------------------------------------------------

    def schedule(self, schedule: BlockageSchedule) -> None:
        schedule.validate()
        for start_ns, duration_ns in schedule.events:
            self.sim.at(start_ns, self._block)
            self.sim.at(start_ns + duration_ns, self._unblock)

    def _block(self) -> None:
        self.blocked = True
        self.blockage_count += 1
        self._restored_rate = None
        self._apply_rate(self.blocked_rate_bps)

    def _unblock(self) -> None:
        self.blocked = False
        self._apply_rate(self.nominal_rate_bps)

    def _apply_rate(self, rate_bps: int) -> None:
        self.port_a.rate_bps = rate_bps
        self.port_b.rate_bps = rate_bps

    # -- handover hook ---------------------------------------------------------

    def steer_to_backup(self, backup_rate_fraction: float = 0.9) -> None:
        """Beam handover: steer to a reflected/backup path.  Restores most
        of the nominal rate even while the LOS stays blocked."""
        if not self.blocked:
            return
        self._restored_rate = max(1, round(self.nominal_rate_bps * backup_rate_fraction))
        self._apply_rate(self._restored_rate)

    @property
    def effective_rate_bps(self) -> int:
        if not self.blocked:
            return self.nominal_rate_bps
        return self._restored_rate if self._restored_rate is not None else self.blocked_rate_bps

    # -- RSSI observable ----------------------------------------------------------

    def rssi_dbm(self) -> float:
        """One noisy RSSI reading at the current instant.

        During a blockage the *LOS* signal stays attenuated regardless of
        any packet-path handover — RSSI tracks the radio, not the data."""
        base = self.baseline_rssi_dbm
        if self.blocked:
            base -= self.blockage_attenuation_db
        return base + self._rng.gauss(0.0, self.rssi_noise_db)
