"""60 GHz mmWave substrate (paper §5.4.3, Figs. 13-14, after ref. [26]).

Data-centre mmWave links suffer line-of-sight (LOS) blockage: when the
beam is blocked, the link collapses to a reflected/fallback path orders
of magnitude slower, and packet inter-arrival times (IAT) inflate
correspondingly.  The paper compares three detection/reaction systems:

- **P4 IAT-based** — a programmable data plane watches per-packet IAT and
  triggers a handover within packet timescales;
- **throughput-based** — a controller polls counters and reacts when the
  measured rate degrades;
- **RSSI-based** — off-the-shelf devices average the received signal
  strength indicator and react when it stays below a threshold.

Modules: :mod:`repro.mmwave.channel` (link + blockage + RSSI),
:mod:`repro.mmwave.traffic` (CBR sender / throughput meter),
:mod:`repro.mmwave.detectors` (the three systems),
:mod:`repro.mmwave.handover` (beam-switch reaction).
"""

from repro.mmwave.channel import MmWaveLink, BlockageSchedule
from repro.mmwave.traffic import CbrSender, ThroughputMeter
from repro.mmwave.detectors import IatDetector, ThroughputDetector, RssiDetector
from repro.mmwave.handover import HandoverController

__all__ = [
    "MmWaveLink",
    "BlockageSchedule",
    "CbrSender",
    "ThroughputMeter",
    "IatDetector",
    "ThroughputDetector",
    "RssiDetector",
    "HandoverController",
]
